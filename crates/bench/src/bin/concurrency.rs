//! Concurrency scaling benchmark: put/get throughput of the shared store vs thread
//! count (1/2/4/8), with the background cleaner running.
//!
//! Emits `BENCH_concurrency.json` so later PRs can track how read/write scaling evolves
//! (the concurrent read/write/clean pipeline of PR 1 is the baseline).
//!
//! Run with: `cargo run --release -p lss-bench --bin concurrency [--quick|--full]`

use lss_bench::Scale;
use lss_core::policy::PolicyKind;
use lss_core::{LogStore, SharedLogStore, StoreConfig};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One measured point: throughput at a given thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScalingPoint {
    threads: usize,
    puts_per_sec: f64,
    gets_per_sec: f64,
    mixed_ops_per_sec: f64,
    write_amplification: f64,
    cleaning_cycles: u64,
}

/// The full benchmark record written to `BENCH_concurrency.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScalingReport {
    benchmark: String,
    policy: String,
    page_bytes: usize,
    segment_bytes: usize,
    num_segments: usize,
    write_streams: usize,
    ops_per_thread: u64,
    results: Vec<ScalingPoint>,
}

fn store_config(scale: Scale) -> StoreConfig {
    let mut c = StoreConfig::paper_default().with_policy(PolicyKind::Mdc);
    c.segment_bytes = 256 * 1024;
    c.num_segments = match scale {
        Scale::Quick => 128,
        Scale::Default => 512,
        Scale::Full => 1024,
    };
    c.sort_buffer_segments = 4;
    // One stream per measured writer thread at the top of the scaling curve: put
    // throughput is the whole point of this benchmark. Overridable for A/B runs
    // (LSS_WRITE_STREAMS=1 reproduces the pre-sharding single-mutex write path).
    c.write_streams = std::env::var("LSS_WRITE_STREAMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    c
}

fn ops_per_thread(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 20_000,
        Scale::Default => 200_000,
        Scale::Full => 1_000_000,
    }
}

/// Cheap deterministic page scrambler (splitmix64 finalizer).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn measure(threads: usize, scale: Scale) -> ScalingPoint {
    let config = store_config(scale);
    let pages = config.logical_pages_for_fill_factor(0.5) as u64;
    let ops = ops_per_thread(scale);
    let payload = vec![0xA5u8; config.page_bytes];
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());

    // Preload to the target fill so cleaning participates in the measurement.
    for p in 0..pages {
        store.put(p, &payload).unwrap();
    }
    store.flush().unwrap();
    store.with_store(|s| s.reset_stats());

    let run_phase = |phase: &str| -> f64 {
        let start = Instant::now();
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = store.clone();
                let payload = &payload;
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    let mut done = 0u64;
                    for i in 0..ops {
                        let page = mix(t as u64 * ops + i) % pages;
                        match phase {
                            "put" => store.put(page, payload).unwrap(),
                            "get" => {
                                std::hint::black_box(store.get(page).unwrap());
                            }
                            _ => {
                                // Mixed: 1 put per 4 gets, the shape of a read-heavy
                                // page-store workload.
                                if i % 5 == 0 {
                                    store.put(page, payload).unwrap();
                                } else {
                                    std::hint::black_box(store.get(page).unwrap());
                                }
                            }
                        }
                        done += 1;
                    }
                    total.fetch_add(done, Ordering::Relaxed);
                });
            }
        });
        total.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
    };

    let puts_per_sec = run_phase("put");
    let gets_per_sec = run_phase("get");
    let mixed_ops_per_sec = run_phase("mixed");
    let stats = store.stats();
    ScalingPoint {
        threads,
        puts_per_sec,
        gets_per_sec,
        mixed_ops_per_sec,
        write_amplification: stats.write_amplification(),
        cleaning_cycles: stats.cleaning_cycles,
    }
}

fn main() {
    let scale = Scale::from_args();
    let config = store_config(scale);
    println!(
        "concurrency scaling: MDC, {} x {} KiB segments, {} write streams, {} ops/thread",
        config.num_segments,
        config.segment_bytes / 1024,
        config.write_streams,
        ops_per_thread(scale)
    );
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>8} {:>10}",
        "threads", "puts/s", "gets/s", "mixed/s", "Wamp", "cleanings"
    );

    let mut results = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let point = measure(threads, scale);
        println!(
            "{:>7} {:>14.0} {:>14.0} {:>14.0} {:>8.3} {:>10}",
            point.threads,
            point.puts_per_sec,
            point.gets_per_sec,
            point.mixed_ops_per_sec,
            point.write_amplification,
            point.cleaning_cycles
        );
        results.push(point);
    }

    let report = ScalingReport {
        benchmark: "concurrency_scaling".to_string(),
        policy: "MDC".to_string(),
        page_bytes: config.page_bytes,
        segment_bytes: config.segment_bytes,
        num_segments: config.num_segments,
        write_streams: config.write_streams,
        ops_per_thread: ops_per_thread(scale),
        results,
    };
    let json = serde_json::to_string_pretty(&report).unwrap();
    std::fs::write("BENCH_concurrency.json", &json).unwrap();
    println!("#json {}", serde_json::to_string(&report).unwrap());
    println!("wrote BENCH_concurrency.json");
}
