//! Regenerates **Figure 6** of the paper: write amplification of all seven cleaning
//! algorithms when replaying TPC-C page-write I/O traces, across fill factors 0.5–0.8.
//!
//! The trace is produced by this workspace's own substrates: `lss-tpcc` runs a (scaled
//! down) TPC-C transaction mix against the `lss-btree` storage engine behind a buffer
//! pool; every page write that reaches storage is recorded and then replayed through the
//! simulator, exactly as the paper replays its traces (§6.3). The fill factor is varied
//! by sizing the simulated store relative to the number of distinct pages the database
//! occupies (the paper varies the TPC-C scale factor against a fixed 100 GB device —
//! same ratio, opposite knob; see EXPERIMENTS.md).

use lss_bench::{print_results, Scale};
use lss_core::config::CleaningConfig;
use lss_core::policy::PolicyKind;
use lss_sim::{run_simulation, SimConfig, SimResult};
use lss_tpcc::{TpccConfig, TpccDriver};
use lss_workload::{PageWorkload, TraceWorkload};

fn main() {
    let scale = Scale::from_args();
    let (warehouses, transactions) = match scale {
        Scale::Quick => (1u32, 20_000u64),
        Scale::Default => (2, 80_000),
        Scale::Full => (4, 300_000),
    };

    eprintln!(
        "# loading TPC-C ({warehouses} warehouses) and running {transactions} transactions..."
    );
    let mut driver =
        TpccDriver::new(TpccConfig::scaled_experiment(warehouses)).expect("TPC-C load failed");
    driver.run(transactions).expect("TPC-C run failed");
    let tx = driver.stats();
    let (trace, distinct_pages) = driver.finish().expect("trace collection failed");
    eprintln!(
        "# trace: {} page writes over {} distinct pages ({} transactions: {:?})",
        trace.len(),
        distinct_pages,
        tx.total(),
        tx
    );

    // Replay the trace at each fill factor. The store geometry is scaled down together
    // with the database so the slack still spans a meaningful number of segments.
    let pages_per_segment = 64usize;
    let fills = [0.5, 0.6, 0.7, 0.8];
    let mut results: Vec<SimResult> = Vec::new();
    for &fill in &fills {
        let workload = TraceWorkload::with_empirical_frequencies("tpcc", &trace);
        let num_segments = ((workload.num_pages() as f64 / fill / pages_per_segment as f64).ceil()
            as usize)
            .max(64);
        for policy in PolicyKind::PAPER_FIGURE5 {
            let config = SimConfig {
                pages_per_segment,
                num_segments,
                fill_factor: fill,
                policy,
                separation: Default::default(),
                sort_buffer_segments: 16,
                cleaning: CleaningConfig {
                    trigger_free_segments: 16,
                    segments_per_cycle: 32,
                    reserved_free_segments: 4,
                    ..CleaningConfig::default()
                },
                up2_mode: Default::default(),
                use_exact_frequencies: None,
                gc_temperature_classes: 1,
                seed: 42,
            };
            let mut w = workload.clone();
            let total =
                (config.physical_pages() * scale.writes_multiplier()).max(trace.len() as u64);
            let r = run_simulation(&config, &mut w, total, total / 4);
            results.push(r);
        }
    }
    print_results(
        "Figure 6: write amplification on TPC-C B+-tree I/O traces",
        &results,
    );
}
