//! Ablation benches for the design knobs called out in DESIGN.md §4:
//!
//! 1. segment `up2` tracking mode (`OnOverwrite` vs `CarryForwardOnly`),
//! 2. the cost-benefit formula (classic LFS vs the paper's literal text),
//! 3. user/GC stream separation (also part of Figure 3),
//! 4. cleaning batch size (1 vs 64 segments per cycle),
//! 5. sort-buffer size (also part of Figure 4).
//!
//! All runs use the 80-20 Zipfian distribution at F = 0.8 except where noted.

use lss_bench::{print_results, run_point, sim_config, ExperimentPoint, Scale};
use lss_core::config::{SeparationConfig, Up2Mode};
use lss_core::policy::PolicyKind;
use lss_sim::{run_simulation, SimResult};
use lss_workload::ZipfianWorkload;

fn main() {
    let scale = Scale::from_args();
    let fill = 0.8;
    let mut results: Vec<SimResult> = Vec::new();

    // 1. up2 tracking mode.
    for (mode, label) in [
        (Up2Mode::OnOverwrite, "MDC up2=on-overwrite"),
        (Up2Mode::CarryForwardOnly, "MDC up2=carry-forward"),
    ] {
        let point = ExperimentPoint::new(PolicyKind::Mdc, fill);
        let mut config = sim_config(&point, scale);
        config.up2_mode = mode;
        let mut w = ZipfianWorkload::new(config.logical_pages(), 0.99, 42);
        let total = config.physical_pages() * scale.writes_multiplier();
        let mut r = run_simulation(&config, &mut w, total, total / 4);
        r.policy = label.to_string();
        results.push(r);
    }

    // 2. Cost-benefit formula (the literal variant cannot sustain F = 0.8; compare at 0.6).
    for (policy, label) in [
        (PolicyKind::CostBenefit, "cost-benefit classic (F=0.6)"),
        (
            PolicyKind::CostBenefitPaperLiteral,
            "cost-benefit literal (F=0.6)",
        ),
    ] {
        let point = ExperimentPoint::new(policy, 0.6);
        let mut r = run_point(&point, scale, |pages| {
            Box::new(ZipfianWorkload::new(pages, 0.99, 42))
        });
        r.policy = label.to_string();
        results.push(r);
    }

    // 3. Separation ablation (MDC variants of Figure 3, but on the Zipfian workload).
    for (sep, label) in [
        (SeparationConfig::full(), "MDC separation=user+GC"),
        (
            SeparationConfig::no_user_separation(),
            "MDC separation=GC-only",
        ),
        (SeparationConfig::none(), "MDC separation=none"),
    ] {
        let point = ExperimentPoint::new(PolicyKind::Mdc, fill).with_separation(sep, label);
        let r = run_point(&point, scale, |pages| {
            Box::new(ZipfianWorkload::new(pages, 0.99, 42))
        });
        results.push(r);
    }

    // 4. Cleaning batch size.
    for (batch, label) in [(1usize, "MDC batch=1"), (64, "MDC batch=64")] {
        let point = ExperimentPoint::new(PolicyKind::Mdc, fill);
        let mut config = sim_config(&point, scale);
        config.cleaning.segments_per_cycle = batch;
        let mut w = ZipfianWorkload::new(config.logical_pages(), 0.99, 42);
        let total = config.physical_pages() * scale.writes_multiplier();
        let mut r = run_simulation(&config, &mut w, total, total / 4);
        r.policy = label.to_string();
        results.push(r);
    }

    // 5. Sort-buffer size: 0 vs 16 (the full sweep is Figure 4).
    for buf in [0usize, 16] {
        let point = ExperimentPoint::new(PolicyKind::Mdc, fill).with_sort_buffer(buf);
        let mut r = run_point(&point, scale, |pages| {
            Box::new(ZipfianWorkload::new(pages, 0.99, 42))
        });
        r.policy = format!("MDC sort-buffer={buf}");
        results.push(r);
    }

    print_results("Ablations (80-20 Zipfian unless noted)", &results);
}
