//! Regenerates **Figure 3** of the paper: the breakdown analysis on hot-cold
//! distributions (50-50 … 90-10) at fill factor 0.8, comparing
//! greedy, MDC-no-sep-user-GC, MDC-no-sep-user, MDC, MDC-opt, and the analytical optimum.

use lss_analysis::hotcold::{HotColdAnalysis, HotColdSpec};
use lss_bench::{print_results, run_point, ExperimentPoint, Scale};
use lss_core::config::SeparationConfig;
use lss_core::policy::PolicyKind;
use lss_sim::SimResult;
use lss_workload::HotColdWorkload;

fn main() {
    let scale = Scale::from_args();
    let fill = 0.8;
    let skews: [u32; 5] = [50, 60, 70, 80, 90];

    let mut all: Vec<SimResult> = Vec::new();
    for &m in &skews {
        let variants: Vec<ExperimentPoint> = vec![
            ExperimentPoint::new(PolicyKind::Greedy, fill),
            ExperimentPoint::new(PolicyKind::Mdc, fill)
                .with_separation(SeparationConfig::none(), "MDC-no-sep-user-GC"),
            ExperimentPoint::new(PolicyKind::Mdc, fill)
                .with_separation(SeparationConfig::no_user_separation(), "MDC-no-sep-user"),
            ExperimentPoint::new(PolicyKind::Mdc, fill),
            ExperimentPoint::new(PolicyKind::MdcOpt, fill),
        ];
        for point in variants {
            let mut r = run_point(&point, scale, |pages| {
                Box::new(HotColdWorkload::from_skew_percent(pages, m, 42))
            });
            r.workload = format!("hotcold-{m}:{}", 100 - m);
            all.push(r);
        }
        // The analytical optimum ("opt" in the figure).
        let analysis = HotColdAnalysis::minimum_cost(fill, HotColdSpec::from_skew_percent(m));
        let mut opt = SimResult {
            policy: "opt".to_string(),
            workload: format!("hotcold-{m}:{}", 100 - m),
            fill_factor: fill,
            measured_writes: 0,
            write_amplification: analysis.min_write_amplification,
            mean_emptiness_at_clean: 2.0 / analysis.min_cost,
            pages_per_segment: 0,
            num_segments: 0,
            stats: Default::default(),
        };
        opt.mean_emptiness_at_clean = 2.0 / analysis.min_cost;
        all.push(opt);
    }
    print_results(
        "Figure 3: breakdown analysis on hot-cold distributions (F = 0.8)",
        &all,
    );
}
