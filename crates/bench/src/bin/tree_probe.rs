//! Single-threaded microbenchmark of the raw B+-tree op path (no KV/log layers):
//! load + mixed get/put/delete ns-per-op, for both plain and shadow (copy-on-write)
//! trees, with periodic checkpoints so the shadow run exercises relocations. Useful
//! for isolating index-layer regressions the full `kv` bench would blur together.
//!
//! `cargo run --release -p lss-bench --bin tree_probe`

use lss_btree::{BTree, BufferPool, MemPageStore};
use std::time::Instant;

fn key(i: u32) -> Vec<u8> {
    format!("key-{i:08}").into_bytes()
}

fn main() {
    const KEYS: u32 = 20_000;
    const OPS: u32 = 200_000;
    let value = vec![0xABu8; 200];
    for shadow in [false, true] {
        let pool = BufferPool::new(MemPageStore::new(1024), 4096);
        let t = if shadow {
            BTree::open_shadow(pool, None).unwrap()
        } else {
            BTree::open(pool).unwrap()
        };
        let start = Instant::now();
        for i in 0..KEYS {
            t.insert(&key(i), &value).unwrap();
        }
        let load = start.elapsed();
        t.begin_checkpoint().commit();
        let mut x = 0x12345678u64;
        let start = Instant::now();
        let mut hits = 0u32;
        for op in 0..OPS {
            if op % 20_000 == 0 {
                t.begin_checkpoint().commit();
            }
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = key((x >> 33) as u32 % KEYS);
            match (x >> 20) % 10 {
                0..=4 => {
                    if t.get(&k).unwrap().is_some() {
                        hits += 1;
                    }
                }
                5..=8 => t.insert(&k, &value).unwrap(),
                _ => {
                    t.delete(&k).unwrap();
                    t.insert(&k, &value).unwrap();
                }
            }
        }
        let mixed = start.elapsed();
        println!(
            "shadow={shadow}: load {:.0} ns/op, mixed {:.0} ns/op ({} ops, {hits} hits)",
            load.as_nanos() as f64 / KEYS as f64,
            mixed.as_nanos() as f64 / OPS as f64,
            OPS
        );
    }
}
