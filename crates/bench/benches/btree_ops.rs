//! Criterion micro-benchmark: B+-tree insert and lookup throughput over the in-memory
//! page store (the substrate used to generate the TPC-C traces of Figure 6).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lss_btree::{BTree, BufferPool, MemPageStore};

fn key(i: u64) -> Vec<u8> {
    format!("bench-key-{i:012}").into_bytes()
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(10);
    let batch = 10_000u64;
    group.throughput(Throughput::Elements(batch));

    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let pool = BufferPool::new(MemPageStore::new(4096), 1024);
            let tree = BTree::open(pool).unwrap();
            for i in 0..batch {
                let k = (i.wrapping_mul(2654435761)) % batch;
                tree.insert(&key(k), b"value-payload-of-a-realistic-size-123456")
                    .unwrap();
            }
            black_box(tree.len())
        })
    });

    group.bench_function("get_10k", |b| {
        let pool = BufferPool::new(MemPageStore::new(4096), 1024);
        let tree = BTree::open(pool).unwrap();
        for i in 0..batch {
            tree.insert(&key(i), b"value-payload-of-a-realistic-size-123456")
                .unwrap();
        }
        b.iter(|| {
            let mut found = 0u64;
            for i in 0..batch {
                if tree.get(&key((i * 7919) % batch)).unwrap().is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
