//! Criterion micro-benchmark: end-to-end simulator throughput (user page writes per
//! second, including sort-buffer handling and cleaning) for greedy and MDC.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lss_core::policy::PolicyKind;
use lss_sim::{SimConfig, Simulator};
use lss_workload::ZipfianWorkload;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_writes");
    group.sample_size(10);
    let writes_per_iter = 200_000u64;
    group.throughput(Throughput::Elements(writes_per_iter));
    for kind in [PolicyKind::Greedy, PolicyKind::Mdc, PolicyKind::MdcOpt] {
        group.bench_function(kind.paper_name(), |b| {
            let config = SimConfig {
                pages_per_segment: 256,
                num_segments: 512,
                fill_factor: 0.8,
                policy: kind,
                ..SimConfig::paper_default(kind)
            };
            let mut workload = ZipfianWorkload::new(config.logical_pages(), 0.99, 42);
            let mut sim = Simulator::new(config, &workload);
            b.iter(|| {
                sim.run_writes(&mut workload, writes_per_iter);
                black_box(sim.stats().gc_pages_written)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
