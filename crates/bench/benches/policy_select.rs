//! Criterion micro-benchmark: victim-selection throughput of each cleaning policy over a
//! large candidate set (the per-cleaning-cycle cost paid by the store and the simulator).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lss_core::policy::{PolicyContext, PolicyKind, SegmentStats};
use lss_core::types::SegmentId;

fn make_segments(n: usize) -> Vec<SegmentStats> {
    (0..n)
        .map(|i| {
            let capacity = 512 * 4096u64;
            let free = (i as u64 * 7919) % capacity;
            SegmentStats {
                id: SegmentId(i as u32),
                capacity_bytes: capacity,
                free_bytes: free,
                live_pages: 512 - (free / 4096),
                up2: (i as u64 * 37) % 1_000_000,
                sealed_at: (i as u64 * 53) % 1_000_000,
                seal_seq: i as u64,
                log_id: (i % 8) as u16,
                temperature: lss_core::freq::TEMPERATURE_UNCLASSIFIED,
                exact_upf: Some(1.0 + (i % 100) as f64 / 10.0),
            }
        })
        .collect()
}

fn bench_policies(c: &mut Criterion) {
    let segments = make_segments(50_000);
    let mut group = c.benchmark_group("policy_select_victims_50k_segments");
    group.sample_size(20);
    for kind in [
        PolicyKind::Age,
        PolicyKind::Greedy,
        PolicyKind::CostBenefit,
        PolicyKind::MultiLog,
        PolicyKind::Mdc,
        PolicyKind::MdcOpt,
    ] {
        group.bench_function(kind.paper_name(), |b| {
            let mut policy = kind.build();
            b.iter(|| {
                let ctx = PolicyContext {
                    unow: 2_000_000,
                    segments: &segments,
                };
                black_box(policy.select_victims(&ctx, 64))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
