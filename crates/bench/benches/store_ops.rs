//! Criterion micro-benchmark: real-store put/get throughput on the in-memory device,
//! including segment sealing and cleaning (greedy vs MDC).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lss_core::policy::PolicyKind;
use lss_core::{LogStore, StoreConfig};

fn store_config(policy: PolicyKind) -> StoreConfig {
    let mut c = StoreConfig::paper_default().with_policy(policy);
    c.segment_bytes = 256 * 1024; // 256 KiB segments keep the benchmark's memory modest
    c.num_segments = 256;
    c.sort_buffer_segments = 4;
    c
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("logstore_put_4k_pages");
    group.sample_size(10);
    let batch = 10_000u64;
    group.throughput(Throughput::Elements(batch));
    for policy in [PolicyKind::Greedy, PolicyKind::Mdc] {
        group.bench_function(policy.paper_name(), |b| {
            let config = store_config(policy);
            let pages = config.logical_pages_for_fill_factor(0.7) as u64;
            let store = LogStore::open_in_memory(config.clone()).unwrap();
            let payload = vec![0xA5u8; config.page_bytes];
            let mut i = 0u64;
            b.iter(|| {
                for _ in 0..batch {
                    let page = (i.wrapping_mul(6364136223846793005) >> 11) % pages;
                    store.put(page, &payload).unwrap();
                    i += 1;
                }
                black_box(store.stats().gc_pages_written)
            })
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("logstore_get_4k_pages");
    group.sample_size(10);
    let batch = 10_000u64;
    group.throughput(Throughput::Elements(batch));
    group.bench_function("MDC", |b| {
        let config = store_config(PolicyKind::Mdc);
        let pages = config.logical_pages_for_fill_factor(0.5) as u64;
        let store = LogStore::open_in_memory(config.clone()).unwrap();
        let payload = vec![0x5Au8; config.page_bytes];
        for p in 0..pages {
            store.put(p, &payload).unwrap();
        }
        store.flush().unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let mut sum = 0usize;
            for _ in 0..batch {
                let page = (i.wrapping_mul(2862933555777941757) >> 9) % pages;
                sum += store.get(page).unwrap().map(|b| b.len()).unwrap_or(0);
                i += 1;
            }
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_put, bench_get);
criterion_main!(benches);
