//! Criterion micro-benchmark: page-id sampling throughput of the workload generators.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lss_workload::{HotColdWorkload, PageWorkload, UniformWorkload, ZipfianWorkload};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_next_page");
    group.sample_size(20);
    let n = 100_000u64;
    let samples = 100_000u64;
    group.throughput(Throughput::Elements(samples));

    group.bench_function("uniform", |b| {
        let mut w = UniformWorkload::new(n, 1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..samples {
                acc = acc.wrapping_add(w.next_page());
            }
            black_box(acc)
        })
    });
    group.bench_function("hotcold-80-20", |b| {
        let mut w = HotColdWorkload::new(n, 0.2, 0.8, 1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..samples {
                acc = acc.wrapping_add(w.next_page());
            }
            black_box(acc)
        })
    });
    group.bench_function("zipfian-0.99", |b| {
        let mut w = ZipfianWorkload::new(n, 0.99, 1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..samples {
                acc = acc.wrapping_add(w.next_page());
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
