//! On-store KV metadata formats: the versioned binary **superblock** of the paged index
//! and the **legacy JSON chunk format** it replaced — plus the classification logic
//! that tells them (and corruption, and absence) apart.
//!
//! The reserved slot at [`crate::kv::META_BASE`] historically held the root chunk of a
//! serde_json-encoded index; today it holds one of the two superblock slots. A single
//! classifier (`classify_slot`, crate-internal) decides what a slot's bytes are:
//!
//! * **absent** — the page was never written (a fresh store);
//! * **a valid superblock** — magic + version + checksum all check out;
//! * **a legacy JSON root** — parses as the old chunk format, triggering migration;
//! * **corrupt** — none of the above. Corruption is reported as an explicit
//!   [`Error::CorruptCheckpoint`] instead of being silently treated as an empty store
//!   (the legacy `reopen` conflated the two in some paths).
//!
//! [`LegacyJsonKvStore`] keeps the old flush-only JSON store alive as a *writer* so the
//! migration tests can fabricate legacy stores and the `kv` bench can A/B the two index
//! formats; the paged [`crate::kv::KvStore`] itself has no serde_json anywhere in its
//! persistence path.

use crate::kv::{KvCounters, KvStats, META_BASE, USER_PAGE_LIMIT};
use bytes::Bytes;
use lss_core::error::{Error, Result};
use lss_core::util::crc32c;
use lss_core::{LogStore, PageId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Magic prefix of a KV superblock page.
const SB_MAGIC: &[u8; 8] = b"LSSKVSB\x01";
/// Current superblock format version.
const SB_VERSION: u16 = 1;
/// Encoded superblock size: magic + version + 5 × u64 + crc32.
const SB_BYTES: usize = 8 + 2 + 5 * 8 + 4;

/// The paged KV layer's commit record: one of these lives in each of the two
/// alternating superblock slots; the valid one with the highest epoch is the committed
/// state. Everything the KV layer needs to reopen — and nothing else — so a single
/// atomic page write flips the store to a new epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Commit epoch (monotonic; selects the slot via `epoch % 2`).
    pub epoch: u64,
    /// Root page of the committed B+-tree (tree-local id).
    pub root: u64,
    /// Tree page-id allocation watermark at commit time.
    pub tree_next_page: u64,
    /// User value page-id allocation watermark at commit time.
    pub user_next_page: u64,
    /// Number of keys in the committed tree (cross-checked on reopen).
    pub len: u64,
}

impl Superblock {
    /// Encode into the on-store byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(SB_BYTES);
        buf.extend_from_slice(SB_MAGIC);
        buf.extend_from_slice(&SB_VERSION.to_le_bytes());
        for v in [
            self.epoch,
            self.root,
            self.tree_next_page,
            self.user_next_page,
            self.len,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32c(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decode, verifying magic, version and checksum. Errors are descriptive — they
    /// surface to the operator when *neither* slot holds anything usable.
    pub fn decode(data: &[u8]) -> Result<Superblock> {
        if data.len() < SB_BYTES {
            return Err(Error::CorruptCheckpoint(format!(
                "kv superblock truncated: {} bytes, need {SB_BYTES}",
                data.len()
            )));
        }
        if &data[..8] != SB_MAGIC {
            return Err(Error::CorruptCheckpoint("kv superblock bad magic".into()));
        }
        let version = u16::from_le_bytes(data[8..10].try_into().unwrap());
        if version != SB_VERSION {
            return Err(Error::CorruptCheckpoint(format!(
                "kv superblock version {version} is not supported by this binary \
                 (expected {SB_VERSION})"
            )));
        }
        let stored_crc = u32::from_le_bytes(data[SB_BYTES - 4..SB_BYTES].try_into().unwrap());
        let actual_crc = crc32c(&data[..SB_BYTES - 4]);
        if stored_crc != actual_crc {
            return Err(Error::CorruptCheckpoint(format!(
                "kv superblock checksum mismatch (stored {stored_crc:#x}, computed {actual_crc:#x})"
            )));
        }
        let word = |i: usize| u64::from_le_bytes(data[10 + i * 8..18 + i * 8].try_into().unwrap());
        Ok(Superblock {
            epoch: word(0),
            root: word(1),
            tree_next_page: word(2),
            user_next_page: word(3),
            len: word(4),
        })
    }
}

/// One chunk of the legacy JSON index format (the root chunk carries the chunk count).
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct LegacyChunk {
    /// Total number of chunks the index was split into.
    pub(crate) chunks: u32,
    /// Key/page-id pairs in this chunk.
    pub(crate) entries: Vec<(Vec<u8>, PageId)>,
    /// Next page id to allocate for user values.
    pub(crate) next_page: PageId,
}

/// What a metadata slot's bytes turned out to be.
#[derive(Debug)]
pub(crate) enum SlotState {
    /// The page was never written.
    Absent,
    /// A valid superblock.
    Valid(Superblock),
    /// The root chunk of a legacy JSON index (migration needed).
    Legacy(LegacyChunk),
    /// Unreadable as either format; carries the reason.
    Corrupt(String),
}

/// Classify a metadata slot: absent / valid superblock / legacy JSON root / corrupt.
/// This single decision point serves superblock version detection *and* the legacy
/// corrupt-vs-absent distinction.
pub(crate) fn classify_slot(bytes: Option<&Bytes>) -> SlotState {
    let Some(bytes) = bytes else {
        return SlotState::Absent;
    };
    if bytes.len() >= 8 && &bytes[..8] == SB_MAGIC {
        // It claims to be a superblock: any decode failure (bad version, bad checksum)
        // is corruption, never silently "absent".
        return match Superblock::decode(bytes) {
            Ok(sb) => SlotState::Valid(sb),
            Err(e) => SlotState::Corrupt(e.to_string()),
        };
    }
    if bytes.first() == Some(&b'{') {
        return match serde_json::from_slice::<LegacyChunk>(bytes) {
            Ok(chunk) => SlotState::Legacy(chunk),
            Err(e) => SlotState::Corrupt(format!("looks like a legacy JSON chunk but: {e}")),
        };
    }
    SlotState::Corrupt(format!(
        "{} bytes that are neither a superblock nor legacy JSON",
        bytes.len()
    ))
}

/// Read a complete legacy index given its already-parsed root chunk: the in-memory
/// key → user-page map plus the user page-id watermark. Missing and corrupt chunks
/// produce distinct, explicit errors.
pub(crate) fn read_legacy_index(
    store: &LogStore,
    root: LegacyChunk,
) -> Result<(BTreeMap<Vec<u8>, PageId>, PageId)> {
    let mut index = BTreeMap::new();
    let mut next_page = root.next_page;
    let chunks = root.chunks;
    for (k, v) in root.entries {
        index.insert(k, v);
    }
    for c in 1..chunks {
        let Some(bytes) = store.get(META_BASE + c as u64)? else {
            return Err(Error::CorruptCheckpoint(format!(
                "legacy kv index chunk {c} of {chunks} is missing"
            )));
        };
        let chunk: LegacyChunk = serde_json::from_slice(&bytes).map_err(|e| {
            Error::CorruptCheckpoint(format!(
                "legacy kv index chunk {c} of {chunks} corrupt: {e}"
            ))
        })?;
        next_page = next_page.max(chunk.next_page);
        for (k, v) in chunk.entries {
            index.insert(k, v);
        }
    }
    Ok((index, next_page))
}

/// The mutable state of a [`LegacyJsonKvStore`], behind one mutex (the legacy format
/// was never meant to scale; the lock just makes the A/B bench able to share it).
#[derive(Debug)]
struct LegacyInner {
    index: BTreeMap<Vec<u8>, PageId>,
    next_page: PageId,
}

/// The pre-paged-index KV store: an in-memory `BTreeMap` index persisted as serde_json
/// chunks sprayed across the reserved page range on [`LegacyJsonKvStore::flush`].
///
/// Kept as a legacy-format *writer* for migration tests and the `kv` bench's
/// JSON-vs-paged A/B; new code should use [`crate::kv::KvStore`], which migrates
/// stores written by this type on first open.
#[derive(Debug)]
pub struct LegacyJsonKvStore {
    store: Arc<LogStore>,
    inner: Mutex<LegacyInner>,
    counters: KvCounters,
}

impl LegacyJsonKvStore {
    /// Wrap a freshly opened [`LogStore`].
    pub fn new(store: LogStore) -> Self {
        Self {
            store: Arc::new(store),
            inner: Mutex::new(LegacyInner {
                index: BTreeMap::new(),
                next_page: 0,
            }),
            counters: KvCounters::default(),
        }
    }

    /// Re-open a store whose index was persisted by [`LegacyJsonKvStore::flush`].
    /// Absent metadata means an empty store; corrupt metadata and already-migrated
    /// (superblock-bearing) stores are explicit errors.
    pub fn reopen(store: LogStore) -> Result<Self> {
        let root = store.get(META_BASE)?;
        match classify_slot(root.as_ref()) {
            SlotState::Absent => Ok(Self::new(store)),
            SlotState::Legacy(chunk) => {
                let (index, next_page) = read_legacy_index(&store, chunk)?;
                Ok(Self {
                    store: Arc::new(store),
                    inner: Mutex::new(LegacyInner { index, next_page }),
                    counters: KvCounters::default(),
                })
            }
            SlotState::Valid(sb) => Err(Error::InvalidConfig(format!(
                "store holds a paged KV index (superblock epoch {}); open it with KvStore",
                sb.epoch
            ))),
            SlotState::Corrupt(detail) => Err(Error::CorruptCheckpoint(format!(
                "legacy kv index root: {detail}"
            ))),
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.inner.lock().index.len()
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert or overwrite a key.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.counters.puts.fetch_add(1, Ordering::Relaxed);
        let page = {
            let mut inner = self.inner.lock();
            match inner.index.get(key) {
                Some(&p) => p,
                None => {
                    let p = inner.next_page;
                    if p >= USER_PAGE_LIMIT {
                        return Err(Error::PageRangeExhausted {
                            next: p,
                            limit: USER_PAGE_LIMIT,
                        });
                    }
                    inner.next_page += 1;
                    inner.index.insert(key.to_vec(), p);
                    p
                }
            }
        };
        self.store.put(page, value)?;
        self.counters
            .value_pages_written
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .value_bytes_written
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Read a key.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.counters.gets.fetch_add(1, Ordering::Relaxed);
        let page = self.inner.lock().index.get(key).copied();
        match page {
            Some(page) => self.store.get(page),
            None => Ok(None),
        }
    }

    /// Delete a key. Returns true if it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        self.counters.deletes.fetch_add(1, Ordering::Relaxed);
        let page = self.inner.lock().index.remove(key);
        match page {
            Some(page) => {
                self.store.delete(page)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Iterate keys in `[start, end)` in order, reading each value.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Bytes)>> {
        self.counters.range_scans.fetch_add(1, Ordering::Relaxed);
        let keys: Vec<(Vec<u8>, PageId)> = self
            .inner
            .lock()
            .index
            .range::<[u8], _>((Bound::Included(start), Bound::Excluded(end)))
            .map(|(k, &p)| (k.clone(), p))
            .collect();
        let mut out = Vec::with_capacity(keys.len());
        for (k, p) in keys {
            if let Some(v) = self.store.get(p)? {
                out.push((k, v));
            }
        }
        Ok(out)
    }

    /// Persist the index as JSON chunks and flush the underlying store (one barrier —
    /// the legacy durability point, with the crash window the paged format closed).
    pub fn flush(&self) -> Result<()> {
        let inner = self.inner.lock();
        // Split the index into chunks that comfortably fit in a page.
        let max_chunk_bytes =
            lss_core::layout::max_single_payload(self.store.config().segment_bytes)
                .min(self.store.config().page_bytes.max(1024))
                / 2;
        let mut chunks: Vec<LegacyChunk> = Vec::new();
        let mut current = LegacyChunk {
            chunks: 0,
            entries: Vec::new(),
            next_page: inner.next_page,
        };
        let mut current_bytes = 0usize;
        for (k, &p) in &inner.index {
            let entry_bytes = k.len() + 24;
            if current_bytes + entry_bytes > max_chunk_bytes && !current.entries.is_empty() {
                chunks.push(std::mem::replace(
                    &mut current,
                    LegacyChunk {
                        chunks: 0,
                        entries: Vec::new(),
                        next_page: inner.next_page,
                    },
                ));
                current_bytes = 0;
            }
            current.entries.push((k.clone(), p));
            current_bytes += entry_bytes;
        }
        chunks.push(current);
        let n = chunks.len() as u32;
        for (i, mut chunk) in chunks.into_iter().enumerate() {
            chunk.chunks = n;
            let bytes = serde_json::to_vec(&chunk)
                .map_err(|e| Error::CorruptCheckpoint(format!("kv index encode: {e}")))?;
            self.counters
                .index_pages_written
                .fetch_add(1, Ordering::Relaxed);
            self.counters
                .index_bytes_written
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            self.store.put(META_BASE + i as u64, &bytes)?;
        }
        self.counters
            .superblock_commits
            .fetch_add(1, Ordering::Relaxed);
        self.store.flush()
    }

    /// Operation counters (same shape as the paged store's, pool gauges zeroed).
    pub fn stats(&self) -> KvStats {
        self.counters
            .snapshot(Default::default(), 0, self.len() as u64, Default::default())
    }

    /// Access the underlying page store (e.g. for statistics).
    pub fn store(&self) -> &LogStore {
        &self.store
    }

    /// Consume the wrapper and return the underlying page store.
    pub fn into_inner(self) -> LogStore {
        let LegacyJsonKvStore { store, .. } = self;
        Arc::try_unwrap(store)
            .unwrap_or_else(|_| unreachable!("LegacyJsonKvStore never leaks store handles"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::policy::PolicyKind;
    use lss_core::StoreConfig;

    fn kv() -> LegacyJsonKvStore {
        let store =
            LogStore::open_in_memory(StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc))
                .unwrap();
        LegacyJsonKvStore::new(store)
    }

    #[test]
    fn superblock_roundtrip_and_corruption_detection() {
        let sb = Superblock {
            epoch: 7,
            root: 42,
            tree_next_page: 99,
            user_next_page: 12345,
            len: 678,
        };
        let enc = sb.encode();
        assert_eq!(Superblock::decode(&enc).unwrap(), sb);
        // Flip one payload byte: the checksum must catch it.
        let mut bad = enc.clone();
        bad[12] ^= 0xFF;
        let err = Superblock::decode(&bad).unwrap_err().to_string();
        assert!(err.contains("checksum"), "unexpected error: {err}");
        // Truncation.
        assert!(Superblock::decode(&enc[..20])
            .unwrap_err()
            .to_string()
            .contains("truncated"));
        // Unsupported version.
        let mut newer = enc.clone();
        newer[8] = 2;
        let err = Superblock::decode(&newer).unwrap_err().to_string();
        assert!(err.contains("version 2"), "unexpected error: {err}");
    }

    #[test]
    fn classify_distinguishes_absent_valid_legacy_and_corrupt() {
        assert!(matches!(classify_slot(None), SlotState::Absent));

        let sb = Superblock {
            epoch: 1,
            root: 1,
            tree_next_page: 2,
            user_next_page: 0,
            len: 0,
        };
        let valid = Bytes::from(sb.encode());
        assert!(matches!(
            classify_slot(Some(&valid)),
            SlotState::Valid(got) if got == sb
        ));

        let legacy = Bytes::from(
            serde_json::to_vec(&LegacyChunk {
                chunks: 1,
                entries: vec![(b"k".to_vec(), 0)],
                next_page: 1,
            })
            .unwrap(),
        );
        assert!(matches!(classify_slot(Some(&legacy)), SlotState::Legacy(_)));

        // A torn superblock is corrupt, not absent.
        let torn = Bytes::from(sb.encode()[..SB_BYTES - 2].to_vec());
        assert!(matches!(classify_slot(Some(&torn)), SlotState::Corrupt(_)));
        // JSON that is not a chunk is corrupt.
        let bad_json = Bytes::from_static(b"{\"nope\": true}");
        assert!(matches!(
            classify_slot(Some(&bad_json)),
            SlotState::Corrupt(_)
        ));
        // Arbitrary bytes are corrupt.
        let garbage = Bytes::from_static(b"\x07\x07\x07\x07");
        assert!(matches!(
            classify_slot(Some(&garbage)),
            SlotState::Corrupt(_)
        ));
    }

    #[test]
    fn legacy_put_get_delete_range_roundtrip() {
        let kv = kv();
        assert!(kv.is_empty());
        kv.put(b"alpha", b"1").unwrap();
        kv.put(b"beta", b"2").unwrap();
        kv.put(b"gamma", b"3").unwrap();
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.get(b"alpha").unwrap().unwrap().as_ref(), b"1");
        assert!(kv.get(b"delta").unwrap().is_none());
        assert!(kv.delete(b"alpha").unwrap());
        assert!(!kv.delete(b"alpha").unwrap());
        let out = kv.range(b"a", b"z").unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, b"beta".to_vec());
    }

    #[test]
    fn legacy_flush_and_reopen_preserves_contents() {
        let kv = kv();
        for i in 0..300u32 {
            kv.put(
                format!("key-{i:04}").as_bytes(),
                format!("value-{i}").as_bytes(),
            )
            .unwrap();
        }
        kv.delete(b"key-0007").unwrap();
        kv.flush().unwrap();
        assert!(kv.stats().index_pages_written > 0);

        let store = kv.into_inner();
        let cfg = store.config().clone();
        let device = store.into_device();
        let recovered = LogStore::recover_with_device(cfg, device).unwrap();
        let kv2 = LegacyJsonKvStore::reopen(recovered).unwrap();
        assert_eq!(kv2.len(), 299);
        assert!(kv2.get(b"key-0007").unwrap().is_none());
        assert_eq!(
            kv2.get(b"key-0123").unwrap().unwrap().as_ref(),
            b"value-123"
        );
    }

    #[test]
    fn legacy_reopen_distinguishes_corrupt_from_absent() {
        // Absent → empty store.
        let store = LogStore::open_in_memory(StoreConfig::small_for_tests()).unwrap();
        assert!(LegacyJsonKvStore::reopen(store).unwrap().is_empty());

        // Corrupt (non-JSON, non-superblock bytes in the root slot) → explicit error.
        let store = LogStore::open_in_memory(StoreConfig::small_for_tests()).unwrap();
        store.put(META_BASE, b"\x99garbage-not-json").unwrap();
        store.flush().unwrap();
        let err = LegacyJsonKvStore::reopen(store).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)), "got {err}");
    }
}
