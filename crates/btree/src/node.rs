//! On-page encoding of B+-tree nodes.
//!
//! Every node occupies exactly one fixed-size page:
//!
//! ```text
//! leaf:     [ 1u8 | nkeys u16 | (klen u16, vlen u16, key, value)* ]
//! internal: [ 2u8 | nkeys u16 | child0 u64 | (klen u16, key, child u64)* ]
//! meta:     [ 3u8 | root u64  | next_page u64 | len u64 ]
//! ```
//!
//! Keys and values are arbitrary byte strings. An internal node with `nkeys` separator
//! keys has `nkeys + 1` children; separator `keys[i]` is the smallest key reachable via
//! `children[i + 1]`.
//!
//! Leaves carry **no sibling links**: range scans walk the tree by successor descent
//! (see `tree`). This is what lets the shadow (copy-on-write) mode relocate any single
//! page without rewriting its left neighbour — with persistent `next` pointers, moving
//! one leaf would cascade through the entire leaf chain.

use lss_core::error::{Error, Result};

/// Node type tags.
const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;
const TAG_META: u8 = 3;

/// Bytes of the fixed leaf header (tag + entry count).
pub(crate) const LEAF_HEADER_BYTES: usize = 1 + 2;

/// A decoded B+-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A leaf node holding key/value pairs in sorted order.
    Leaf {
        /// Sorted `(key, value)` entries.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    },
    /// An internal node with separator keys and child page ids.
    Internal {
        /// Sorted separator keys (`len = children.len() - 1`).
        keys: Vec<Vec<u8>>,
        /// Child page ids.
        children: Vec<u64>,
    },
}

/// The tree's metadata page (page 0 in stand-alone mode; shadow-mode trees keep this
/// state in an external superblock instead — see the `kv` module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaPage {
    /// Page id of the root node.
    pub root: u64,
    /// Next page id to allocate.
    pub next_page_id: u64,
    /// Number of live keys.
    pub len: u64,
}

fn corrupt(detail: &str) -> Error {
    Error::CorruptSegment {
        segment: lss_core::SegmentId(u32::MAX),
        detail: format!("btree node: {detail}"),
    }
}

impl Node {
    /// An empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf {
            entries: Vec::new(),
        }
    }

    /// True if this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Number of bytes the encoded node occupies (must stay ≤ the page size).
    pub fn encoded_size(&self) -> usize {
        match self {
            Node::Leaf { entries } => {
                LEAF_HEADER_BYTES
                    + entries
                        .iter()
                        .map(|(k, v)| 4 + k.len() + v.len())
                        .sum::<usize>()
            }
            Node::Internal { keys, .. } => {
                1 + 2 + 8 + keys.iter().map(|k| 2 + k.len() + 8).sum::<usize>()
            }
        }
    }

    /// Encode into a page image of exactly `page_size` bytes.
    pub fn encode(&self, page_size: usize) -> Result<Vec<u8>> {
        let mut buf = Vec::with_capacity(page_size);
        match self {
            Node::Leaf { entries } => {
                buf.push(TAG_LEAF);
                buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for (k, v) in entries {
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(&(v.len() as u16).to_le_bytes());
                    buf.extend_from_slice(k);
                    buf.extend_from_slice(v);
                }
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err(corrupt("internal node child/key count mismatch"));
                }
                buf.push(TAG_INTERNAL);
                buf.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                buf.extend_from_slice(&children[0].to_le_bytes());
                for (i, k) in keys.iter().enumerate() {
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(k);
                    buf.extend_from_slice(&children[i + 1].to_le_bytes());
                }
            }
        }
        if buf.len() > page_size {
            return Err(corrupt(&format!(
                "node needs {} bytes but the page holds {page_size}",
                buf.len()
            )));
        }
        buf.resize(page_size, 0);
        Ok(buf)
    }

    /// Decode a node from a page image.
    pub fn decode(data: &[u8]) -> Result<Node> {
        if data.is_empty() {
            return Err(corrupt("empty page"));
        }
        let mut pos = 1usize;
        let read_u16 = |data: &[u8], pos: &mut usize| -> Result<u16> {
            if *pos + 2 > data.len() {
                return Err(corrupt("truncated u16"));
            }
            let v = u16::from_le_bytes(data[*pos..*pos + 2].try_into().unwrap());
            *pos += 2;
            Ok(v)
        };
        let read_u64 = |data: &[u8], pos: &mut usize| -> Result<u64> {
            if *pos + 8 > data.len() {
                return Err(corrupt("truncated u64"));
            }
            let v = u64::from_le_bytes(data[*pos..*pos + 8].try_into().unwrap());
            *pos += 8;
            Ok(v)
        };
        let read_bytes = |data: &[u8], pos: &mut usize, len: usize| -> Result<Vec<u8>> {
            if *pos + len > data.len() {
                return Err(corrupt("truncated byte string"));
            }
            let v = data[*pos..*pos + len].to_vec();
            *pos += len;
            Ok(v)
        };
        match data[0] {
            TAG_LEAF => {
                let nkeys = read_u16(data, &mut pos)? as usize;
                let mut entries = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    let klen = read_u16(data, &mut pos)? as usize;
                    let vlen = read_u16(data, &mut pos)? as usize;
                    let k = read_bytes(data, &mut pos, klen)?;
                    let v = read_bytes(data, &mut pos, vlen)?;
                    entries.push((k, v));
                }
                Ok(Node::Leaf { entries })
            }
            TAG_INTERNAL => {
                let nkeys = read_u16(data, &mut pos)? as usize;
                let mut children = Vec::with_capacity(nkeys + 1);
                children.push(read_u64(data, &mut pos)?);
                let mut keys = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    let klen = read_u16(data, &mut pos)? as usize;
                    keys.push(read_bytes(data, &mut pos, klen)?);
                    children.push(read_u64(data, &mut pos)?);
                }
                Ok(Node::Internal { keys, children })
            }
            other => Err(corrupt(&format!("unknown node tag {other}"))),
        }
    }
}

/// True if the encoded page is a leaf (false = internal). Errors on a non-node page.
pub fn raw_is_leaf(data: &[u8]) -> Result<bool> {
    match data.first() {
        Some(&TAG_LEAF) => Ok(true),
        Some(&TAG_INTERNAL) => Ok(false),
        _ => Err(corrupt("not a btree node page")),
    }
}

/// Zero-allocation child search of an encoded internal page: returns the child slot
/// for `key`, its page id, and the separator just right of the slot (`None` on the
/// rightmost slot) — the tight exclusive upper bound of the chosen subtree. Matches
/// the decoded-path rule: a key equal to a separator belongs to the right subtree.
pub fn raw_internal_search<'a>(
    data: &'a [u8],
    key: &[u8],
) -> Result<(usize, u64, Option<&'a [u8]>)> {
    if data.len() < 11 || data[0] != TAG_INTERNAL {
        return Err(corrupt("not an internal page"));
    }
    let nkeys = u16::from_le_bytes(data[1..3].try_into().unwrap()) as usize;
    let mut child = u64::from_le_bytes(data[3..11].try_into().unwrap());
    let mut pos = 11usize;
    for i in 0..nkeys {
        if pos + 2 > data.len() {
            return Err(corrupt("truncated internal entry"));
        }
        let klen = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        if pos + klen + 8 > data.len() {
            return Err(corrupt("truncated internal entry"));
        }
        let sep = &data[pos..pos + klen];
        pos += klen;
        if sep > key {
            return Ok((i, child, Some(sep)));
        }
        child = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
        pos += 8;
    }
    Ok((nkeys, child, None))
}

/// Zero-allocation point lookup in an encoded leaf: the value slice for `key`, if
/// present. Entries are sorted, so the walk stops at the first key past `key`.
pub fn raw_leaf_search<'a>(data: &'a [u8], key: &[u8]) -> Result<Option<&'a [u8]>> {
    let mut it = raw_leaf_entries(data)?;
    for entry in &mut it {
        let (k, v) = entry?;
        match k.cmp(key) {
            std::cmp::Ordering::Less => continue,
            std::cmp::Ordering::Equal => return Ok(Some(v)),
            std::cmp::Ordering::Greater => return Ok(None),
        }
    }
    Ok(None)
}

/// Zero-allocation in-order iterator over an encoded leaf's `(key, value)` slices.
pub fn raw_leaf_entries(data: &[u8]) -> Result<RawLeafEntries<'_>> {
    if data.len() < LEAF_HEADER_BYTES || data[0] != TAG_LEAF {
        return Err(corrupt("not a leaf page"));
    }
    Ok(RawLeafEntries {
        data,
        pos: LEAF_HEADER_BYTES,
        remaining: u16::from_le_bytes(data[1..3].try_into().unwrap()) as usize,
    })
}

/// Iterator state for [`raw_leaf_entries`].
pub struct RawLeafEntries<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
}

impl<'a> Iterator for RawLeafEntries<'a> {
    type Item = Result<(&'a [u8], &'a [u8])>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.pos + 4 > self.data.len() {
            self.remaining = 0;
            return Some(Err(corrupt("truncated leaf entry")));
        }
        let klen =
            u16::from_le_bytes(self.data[self.pos..self.pos + 2].try_into().unwrap()) as usize;
        let vlen =
            u16::from_le_bytes(self.data[self.pos + 2..self.pos + 4].try_into().unwrap()) as usize;
        self.pos += 4;
        if self.pos + klen + vlen > self.data.len() {
            self.remaining = 0;
            return Some(Err(corrupt("truncated leaf entry")));
        }
        let k = &self.data[self.pos..self.pos + klen];
        let v = &self.data[self.pos + klen..self.pos + klen + vlen];
        self.pos += klen + vlen;
        Some(Ok((k, v)))
    }
}

impl MetaPage {
    /// Encode the meta page.
    pub fn encode(&self, page_size: usize) -> Vec<u8> {
        let mut buf = Vec::with_capacity(page_size);
        buf.push(TAG_META);
        buf.extend_from_slice(&self.root.to_le_bytes());
        buf.extend_from_slice(&self.next_page_id.to_le_bytes());
        buf.extend_from_slice(&self.len.to_le_bytes());
        buf.resize(page_size, 0);
        buf
    }

    /// Decode the meta page.
    pub fn decode(data: &[u8]) -> Result<MetaPage> {
        if data.len() < 25 || data[0] != TAG_META {
            return Err(corrupt("not a meta page"));
        }
        Ok(MetaPage {
            root: u64::from_le_bytes(data[1..9].try_into().unwrap()),
            next_page_id: u64::from_le_bytes(data[9..17].try_into().unwrap()),
            len: u64::from_le_bytes(data[17..25].try_into().unwrap()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf {
            entries: vec![
                (b"alpha".to_vec(), b"1".to_vec()),
                (b"beta".to_vec(), b"two".to_vec()),
            ],
        };
        let encoded = node.encode(256).unwrap();
        assert_eq!(encoded.len(), 256);
        assert_eq!(Node::decode(&encoded).unwrap(), node);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node::Internal {
            keys: vec![b"m".to_vec(), b"t".to_vec()],
            children: vec![10, 20, 30],
        };
        let encoded = node.encode(128).unwrap();
        assert_eq!(Node::decode(&encoded).unwrap(), node);
    }

    #[test]
    fn meta_roundtrip() {
        let m = MetaPage {
            root: 7,
            next_page_id: 99,
            len: 12345,
        };
        let enc = m.encode(64);
        assert_eq!(MetaPage::decode(&enc).unwrap(), m);
        assert!(MetaPage::decode(&[0u8; 64]).is_err());
    }

    #[test]
    fn oversized_node_is_rejected() {
        let node = Node::Leaf {
            entries: vec![(vec![1u8; 100], vec![2u8; 100])],
        };
        assert!(node.encode(64).is_err());
        assert!(node.encode(256).is_ok());
    }

    #[test]
    fn mismatched_internal_node_is_rejected() {
        let node = Node::Internal {
            keys: vec![b"k".to_vec()],
            children: vec![1],
        };
        assert!(node.encode(128).is_err());
    }

    #[test]
    fn garbage_pages_are_rejected() {
        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[9u8; 32]).is_err());
        // Truncated leaf: claims one entry but has no payload.
        let mut buf = vec![TAG_LEAF];
        buf.extend_from_slice(&1u16.to_le_bytes());
        assert!(Node::decode(&buf).is_err());
    }

    #[test]
    fn raw_internal_search_matches_decoded_child_choice() {
        let node = Node::Internal {
            keys: vec![b"f".to_vec(), b"m".to_vec(), b"t".to_vec()],
            children: vec![10, 20, 30, 40],
        };
        let enc = node.encode(256).unwrap();
        assert!(!raw_is_leaf(&enc).unwrap());
        // Before the first separator, equal-to-a-separator (right subtree), between,
        // and past the last.
        assert_eq!(
            raw_internal_search(&enc, b"a").unwrap(),
            (0, 10, Some(&b"f"[..]))
        );
        assert_eq!(
            raw_internal_search(&enc, b"f").unwrap(),
            (1, 20, Some(&b"m"[..]))
        );
        assert_eq!(
            raw_internal_search(&enc, b"p").unwrap(),
            (2, 30, Some(&b"t"[..]))
        );
        assert_eq!(raw_internal_search(&enc, b"z").unwrap(), (3, 40, None));
    }

    #[test]
    fn raw_leaf_search_and_iteration_match_decoded_entries() {
        let entries = vec![
            (b"alpha".to_vec(), b"1".to_vec()),
            (b"beta".to_vec(), b"two".to_vec()),
            (b"gamma".to_vec(), b"".to_vec()),
        ];
        let enc = Node::Leaf {
            entries: entries.clone(),
        }
        .encode(256)
        .unwrap();
        assert!(raw_is_leaf(&enc).unwrap());
        assert_eq!(raw_leaf_search(&enc, b"beta").unwrap(), Some(&b"two"[..]));
        assert_eq!(raw_leaf_search(&enc, b"gamma").unwrap(), Some(&b""[..]));
        assert_eq!(raw_leaf_search(&enc, b"aaa").unwrap(), None);
        assert_eq!(raw_leaf_search(&enc, b"delta").unwrap(), None);
        assert_eq!(raw_leaf_search(&enc, b"zzz").unwrap(), None);
        let walked: Vec<(Vec<u8>, Vec<u8>)> = raw_leaf_entries(&enc)
            .unwrap()
            .map(|e| e.map(|(k, v)| (k.to_vec(), v.to_vec())))
            .collect::<Result<_>>()
            .unwrap();
        assert_eq!(walked, entries);
    }

    #[test]
    fn raw_accessors_reject_wrong_tags_and_truncation() {
        let leaf = Node::empty_leaf().encode(64).unwrap();
        let internal = Node::Internal {
            keys: vec![],
            children: vec![7],
        }
        .encode(64)
        .unwrap();
        assert!(raw_internal_search(&leaf, b"x").is_err());
        assert!(raw_leaf_entries(&internal).is_err());
        assert!(raw_is_leaf(&[]).is_err());
        assert!(raw_is_leaf(&[9u8; 16]).is_err());
        assert_eq!(raw_internal_search(&internal, b"x").unwrap(), (0, 7, None));
        assert_eq!(raw_leaf_entries(&leaf).unwrap().count(), 0);
        // A leaf claiming one entry with no payload errors instead of panicking.
        let mut bad = vec![TAG_LEAF];
        bad.extend_from_slice(&1u16.to_le_bytes());
        assert!(raw_leaf_entries(&bad).unwrap().next().unwrap().is_err());
    }

    #[test]
    fn encoded_size_matches_actual_encoding_for_leaves() {
        let node = Node::Leaf {
            entries: vec![
                (b"key".to_vec(), b"value".to_vec()),
                (b"k2".to_vec(), b"v2".to_vec()),
            ],
        };
        let exact: usize = 1 + 2 + (4 + 3 + 5) + (4 + 2 + 2);
        assert_eq!(node.encoded_size(), exact);
    }
}
