//! A fixed-capacity buffer pool with CLOCK (second-chance) eviction, dirty-page
//! tracking and ordered write-back — internally synchronised behind sharded latches.
//!
//! The pool sits between the B+-tree and a [`crate::page_store::PageStore`]. Only dirty
//! evictions and explicit write-backs reach the store — exactly the behaviour that
//! shapes the page-write I/O trace the paper's Figure 6 experiment replays (the authors
//! used a 4 GiB buffer cache; the capacity here is configurable and scaled down together
//! with the workload).
//!
//! Since the shared-handle refactor every method takes `&self`: frames are partitioned
//! into up to 16 shards by page-id hash, each shard guarded by its own mutex with its
//! own CLOCK hand, so concurrent readers of a shared [`crate::BTree`] touch disjoint
//! latches. A shard latch is a leaf lock: no other lock is ever acquired while one is
//! held (the underlying [`PageStore`] is `&self` and internally synchronised).
//! Statistics are lock-free atomics.
//!
//! Write-back discipline: [`BufferPool::write_back`] flushes dirty pages in ascending
//! page-id order (ordered write-back — sequential-friendly for the store underneath and
//! deterministic for tests), marks each frame clean only after its store write
//! succeeded, and does *not* sync; [`BufferPool::flush_all`] adds the sync. The
//! crash-consistency protocol of the KV layer (see `kv`) relies on this split: dirty
//! index pages are written and synced (barrier 1) strictly before the superblock flip
//! (barrier 2).

use crate::page_store::PageStore;
use lss_core::util::mix64;
use lss_core::Result;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct Frame {
    page_id: u64,
    /// Shared with readers: a pool hit hands out a clone of the `Arc`, so the page
    /// bytes are never copied under the shard latch (the latch hold is O(1)).
    data: Arc<Vec<u8>>,
    dirty: bool,
    referenced: bool,
}

/// Buffer pool statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read the underlying store.
    pub misses: u64,
    /// Dirty pages written back on eviction.
    pub dirty_evictions: u64,
    /// Clean pages dropped on eviction.
    pub clean_evictions: u64,
    /// Pages written back by explicit flushes / write-backs.
    pub flush_writes: u64,
}

impl BufferPoolStats {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lock-free counters behind [`BufferPoolStats`].
#[derive(Debug, Default)]
struct AtomicPoolStats {
    hits: AtomicU64,
    misses: AtomicU64,
    dirty_evictions: AtomicU64,
    clean_evictions: AtomicU64,
    flush_writes: AtomicU64,
}

/// One latch-guarded slice of the pool: its own frames, lookup index and CLOCK hand.
#[derive(Debug, Default)]
struct Shard {
    frames: Vec<Frame>,
    index: HashMap<u64, usize>,
    clock_hand: usize,
}

/// A sharded CLOCK buffer pool over a [`PageStore`].
#[derive(Debug)]
pub struct BufferPool<S: PageStore> {
    store: S,
    capacity: usize,
    shard_capacity: usize,
    shards: Box<[Mutex<Shard>]>,
    stats: AtomicPoolStats,
}

impl<S: PageStore> BufferPool<S> {
    /// Create a pool holding up to `capacity` pages.
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity >= 2, "buffer pool needs at least two frames");
        // Small pools stay single-sharded so their capacity (and eviction order) is
        // exact; larger pools spread across up to 16 latches with >= 4 frames each.
        let num_shards = (capacity / 4).clamp(1, 16);
        let shard_capacity = capacity.div_ceil(num_shards);
        Self {
            store,
            capacity,
            shard_capacity,
            shards: (0..num_shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            stats: AtomicPoolStats::default(),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of latch shards the frames are partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }

    /// Number of dirty pages currently cached (gauge).
    pub fn dirty_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().frames.iter().filter(|f| f.dirty).count())
            .sum()
    }

    /// Statistics so far.
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            dirty_evictions: self.stats.dirty_evictions.load(Ordering::Relaxed),
            clean_evictions: self.stats.clean_evictions.load(Ordering::Relaxed),
            flush_writes: self.stats.flush_writes.load(Ordering::Relaxed),
        }
    }

    /// Page size of the underlying store.
    pub fn page_size(&self) -> usize {
        self.store.page_size()
    }

    fn shard(&self, page_id: u64) -> &Mutex<Shard> {
        &self.shards[(mix64(page_id) as usize) % self.shards.len()]
    }

    /// Read a page through the pool. Returns `None` if the page does not exist. A hit
    /// clones only the frame's `Arc`, so concurrent readers of hot pages (every
    /// descent touches the root) do not serialise on a byte copy.
    pub fn read(&self, page_id: u64) -> Result<Option<Arc<Vec<u8>>>> {
        let mut shard = self.shard(page_id).lock();
        if let Some(&idx) = shard.index.get(&page_id) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            shard.frames[idx].referenced = true;
            return Ok(Some(Arc::clone(&shard.frames[idx].data)));
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        // The store read happens under the shard latch: this serialises misses within a
        // shard but guarantees a page is installed at most once and that no thread can
        // observe the store image of a page another thread is concurrently evicting.
        match self.store.read_page(page_id)? {
            Some(data) => {
                let data = Arc::new(data);
                self.install(&mut shard, page_id, Arc::clone(&data), false)?;
                Ok(Some(data))
            }
            None => Ok(None),
        }
    }

    /// Write a page through the pool (kept dirty until evicted or flushed).
    pub fn write(&self, page_id: u64, data: Vec<u8>) -> Result<()> {
        assert_eq!(
            data.len(),
            self.store.page_size(),
            "page {page_id} has the wrong size"
        );
        let data = Arc::new(data);
        let mut shard = self.shard(page_id).lock();
        if let Some(&idx) = shard.index.get(&page_id) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            let f = &mut shard.frames[idx];
            f.data = data;
            f.dirty = true;
            f.referenced = true;
            return Ok(());
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.install(&mut shard, page_id, data, true)?;
        Ok(())
    }

    /// Write every dirty page back to the store in ascending page-id order, marking
    /// each frame clean only after its store write succeeded. Does **not** sync the
    /// store; callers that need durability follow with [`PageStore::sync`] (or use
    /// [`BufferPool::flush_all`]).
    ///
    /// Callers must prevent concurrent `write`s for the write-back to be exhaustive
    /// (the B+-tree holds its exclusive latch across checkpoints); concurrent reads are
    /// harmless.
    ///
    /// Returns the page ids written, in write order.
    pub fn write_back(&self) -> Result<Vec<u64>> {
        let mut dirty: Vec<(u64, Arc<Vec<u8>>)> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for f in shard.frames.iter().filter(|f| f.dirty) {
                dirty.push((f.page_id, Arc::clone(&f.data)));
            }
        }
        dirty.sort_by_key(|(id, _)| *id);
        let mut written = Vec::with_capacity(dirty.len());
        for (page_id, data) in dirty {
            self.store.write_page(page_id, &data)?;
            self.stats.flush_writes.fetch_add(1, Ordering::Relaxed);
            written.push(page_id);
            let mut shard = self.shard(page_id).lock();
            if let Some(&idx) = shard.index.get(&page_id) {
                // Only clear the flag if the frame still holds what we wrote (a
                // concurrent writer may have re-dirtied it; its data is newer).
                let f = &mut shard.frames[idx];
                if Arc::ptr_eq(&f.data, &data) {
                    f.dirty = false;
                }
            }
        }
        Ok(written)
    }

    /// Write every dirty page back to the store (ordered) and sync it.
    pub fn flush_all(&self) -> Result<()> {
        self.write_back()?;
        self.store.sync()
    }

    /// Flush and return the underlying store.
    pub fn into_store(self) -> Result<S> {
        self.flush_all()?;
        Ok(self.store)
    }

    /// Access the underlying store without flushing.
    pub fn store(&self) -> &S {
        &self.store
    }

    fn install(
        &self,
        shard: &mut Shard,
        page_id: u64,
        data: Arc<Vec<u8>>,
        dirty: bool,
    ) -> Result<()> {
        if shard.frames.len() < self.shard_capacity {
            let idx = shard.frames.len();
            shard.frames.push(Frame {
                page_id,
                data,
                dirty,
                referenced: true,
            });
            shard.index.insert(page_id, idx);
            return Ok(());
        }
        let idx = self.evict_one(shard)?;
        let old = shard.frames[idx].page_id;
        shard.index.remove(&old);
        shard.frames[idx] = Frame {
            page_id,
            data,
            dirty,
            referenced: true,
        };
        shard.index.insert(page_id, idx);
        Ok(())
    }

    /// CLOCK eviction within one shard: sweep until an unreferenced frame is found,
    /// clearing reference bits along the way; write the victim back if dirty (still
    /// under the shard latch, so no thread can read the store image of a page whose
    /// write-back is in flight). Returns the freed frame index.
    fn evict_one(&self, shard: &mut Shard) -> Result<usize> {
        loop {
            let idx = shard.clock_hand;
            shard.clock_hand = (shard.clock_hand + 1) % shard.frames.len();
            if shard.frames[idx].referenced {
                shard.frames[idx].referenced = false;
                continue;
            }
            if shard.frames[idx].dirty {
                let (pid, data) = (
                    shard.frames[idx].page_id,
                    Arc::clone(&shard.frames[idx].data),
                );
                self.store.write_page(pid, &data)?;
                self.stats.dirty_evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                self.stats.clean_evictions.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_store::{MemPageStore, TracingPageStore};

    const PS: usize = 64;

    fn page(b: u8) -> Vec<u8> {
        vec![b; PS]
    }

    #[test]
    fn read_write_hit_miss_accounting() {
        let pool = BufferPool::new(MemPageStore::new(PS), 4);
        assert!(pool.read(1).unwrap().is_none());
        pool.write(1, page(1)).unwrap();
        assert_eq!(*pool.read(1).unwrap().unwrap(), page(1));
        let s = pool.stats();
        assert_eq!(s.hits, 1); // the read-after-write
        assert!(s.misses >= 2); // the initial missing read and the write install
    }

    #[test]
    fn dirty_pages_reach_the_store_only_on_eviction_or_flush() {
        let store = TracingPageStore::new(MemPageStore::new(PS));
        let pool = BufferPool::new(store, 4);
        for i in 0..4u64 {
            pool.write(i, page(i as u8)).unwrap();
        }
        assert_eq!(
            pool.store().trace_len(),
            0,
            "nothing should reach the store yet"
        );
        assert_eq!(pool.dirty_pages(), 4);
        // Overflow the pool: evictions must write dirty pages back.
        for i in 4..10u64 {
            pool.write(i, page(i as u8)).unwrap();
        }
        assert!(pool.store().trace_len() > 0);
        pool.flush_all().unwrap();
        assert_eq!(pool.dirty_pages(), 0);
        let (trace, inner) = pool.into_store().unwrap().into_parts();
        // Every written page is durable in the inner store.
        assert_eq!(inner.distinct_pages(), 10);
        assert!(trace.len() >= 10);
    }

    #[test]
    fn repeated_access_to_hot_pages_is_absorbed() {
        let store = TracingPageStore::new(MemPageStore::new(PS));
        let pool = BufferPool::new(store, 8);
        // A working set that fits: repeatedly rewrite the same 4 pages.
        for round in 0..100u64 {
            for i in 0..4u64 {
                pool.write(i, page((round % 250) as u8)).unwrap();
            }
        }
        // No evictions were needed, so the store saw nothing.
        assert_eq!(pool.store().trace_len(), 0);
        assert!(pool.stats().hit_ratio() > 0.9);
    }

    #[test]
    fn evicted_then_reread_pages_survive() {
        let pool = BufferPool::new(MemPageStore::new(PS), 4);
        for i in 0..32u64 {
            pool.write(i, page(i as u8)).unwrap();
        }
        for i in 0..32u64 {
            assert_eq!(
                *pool.read(i).unwrap().unwrap(),
                page(i as u8),
                "page {i} lost"
            );
        }
    }

    #[test]
    fn write_back_is_ordered_by_page_id() {
        let store = TracingPageStore::new(MemPageStore::new(PS));
        let pool = BufferPool::new(store, 64);
        // Insert in scrambled order; write-back must still be ascending.
        for i in [9u64, 3, 41, 7, 0, 25, 12] {
            pool.write(i, page(i as u8)).unwrap();
        }
        let written = pool.write_back().unwrap();
        assert_eq!(written, vec![0, 3, 7, 9, 12, 25, 41]);
        assert_eq!(pool.store().trace().writes, vec![0, 3, 7, 9, 12, 25, 41]);
        assert_eq!(pool.dirty_pages(), 0);
    }

    #[test]
    fn flush_all_clears_dirty_state() {
        let pool = BufferPool::new(MemPageStore::new(PS), 4);
        pool.write(1, page(9)).unwrap();
        pool.flush_all().unwrap();
        let before = pool.stats().flush_writes;
        pool.flush_all().unwrap();
        assert_eq!(
            pool.stats().flush_writes,
            before,
            "second flush had nothing to do"
        );
    }

    #[test]
    fn concurrent_readers_and_writers_on_a_shared_pool() {
        let pool = std::sync::Arc::new(BufferPool::new(MemPageStore::new(PS), 128));
        for i in 0..256u64 {
            pool.write(i, page((i % 250) as u8)).unwrap();
        }
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = pool.clone();
                scope.spawn(move || {
                    for round in 0..500u64 {
                        let i = (t * 97 + round) % 256;
                        let got = pool.read(i).unwrap().unwrap();
                        assert_eq!(*got, page((i % 250) as u8), "page {i} corrupted");
                    }
                });
            }
            let pool = pool.clone();
            scope.spawn(move || {
                // Rewrite pages with their same canonical contents while readers run.
                for round in 0..500u64 {
                    let i = (round * 31) % 256;
                    pool.write(i, page((i % 250) as u8)).unwrap();
                }
            });
        });
        pool.flush_all().unwrap();
        assert_eq!(pool.store().distinct_pages(), 256);
    }

    #[test]
    #[should_panic(expected = "at least two frames")]
    fn tiny_pool_rejected() {
        let _ = BufferPool::new(MemPageStore::new(PS), 1);
    }
}
