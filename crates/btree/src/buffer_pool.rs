//! A fixed-capacity buffer pool with CLOCK (second-chance) eviction and dirty-page
//! write-back.
//!
//! The pool sits between the B+-tree and a [`crate::page_store::PageStore`]. Only dirty
//! evictions and explicit flushes reach the store — exactly the behaviour that shapes the
//! page-write I/O trace the paper's Figure 6 experiment replays (the authors used a 4 GiB
//! buffer cache; the capacity here is configurable and scaled down together with the
//! workload).

use crate::page_store::PageStore;
use lss_core::Result;
use std::collections::HashMap;

#[derive(Debug)]
struct Frame {
    page_id: u64,
    data: Vec<u8>,
    dirty: bool,
    referenced: bool,
}

/// Buffer pool statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read the underlying store.
    pub misses: u64,
    /// Dirty pages written back on eviction.
    pub dirty_evictions: u64,
    /// Clean pages dropped on eviction.
    pub clean_evictions: u64,
    /// Pages written back by explicit flushes.
    pub flush_writes: u64,
}

impl BufferPoolStats {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A CLOCK buffer pool over a [`PageStore`].
#[derive(Debug)]
pub struct BufferPool<S: PageStore> {
    store: S,
    capacity: usize,
    frames: Vec<Frame>,
    index: HashMap<u64, usize>,
    clock_hand: usize,
    stats: BufferPoolStats,
}

impl<S: PageStore> BufferPool<S> {
    /// Create a pool holding up to `capacity` pages.
    pub fn new(store: S, capacity: usize) -> Self {
        assert!(capacity >= 2, "buffer pool needs at least two frames");
        Self {
            store,
            capacity,
            frames: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            clock_hand: 0,
            stats: BufferPoolStats::default(),
        }
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.frames.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    /// Page size of the underlying store.
    pub fn page_size(&self) -> usize {
        self.store.page_size()
    }

    /// Read a page through the pool. Returns `None` if the page does not exist.
    pub fn read(&mut self, page_id: u64) -> Result<Option<Vec<u8>>> {
        if let Some(&idx) = self.index.get(&page_id) {
            self.stats.hits += 1;
            self.frames[idx].referenced = true;
            return Ok(Some(self.frames[idx].data.clone()));
        }
        self.stats.misses += 1;
        match self.store.read_page(page_id)? {
            Some(data) => {
                self.install(page_id, data.clone(), false)?;
                Ok(Some(data))
            }
            None => Ok(None),
        }
    }

    /// Write a page through the pool (kept dirty until evicted or flushed).
    pub fn write(&mut self, page_id: u64, data: Vec<u8>) -> Result<()> {
        assert_eq!(
            data.len(),
            self.store.page_size(),
            "page {page_id} has the wrong size"
        );
        if let Some(&idx) = self.index.get(&page_id) {
            self.stats.hits += 1;
            let f = &mut self.frames[idx];
            f.data = data;
            f.dirty = true;
            f.referenced = true;
            return Ok(());
        }
        self.stats.misses += 1;
        self.install(page_id, data, true)?;
        Ok(())
    }

    /// Write every dirty page back to the store and sync it.
    pub fn flush_all(&mut self) -> Result<()> {
        for f in self.frames.iter_mut() {
            if f.dirty {
                self.store.write_page(f.page_id, &f.data)?;
                f.dirty = false;
                self.stats.flush_writes += 1;
            }
        }
        self.store.sync()
    }

    /// Flush and return the underlying store.
    pub fn into_store(mut self) -> Result<S> {
        self.flush_all()?;
        Ok(self.store)
    }

    /// Access the underlying store without flushing.
    pub fn store(&self) -> &S {
        &self.store
    }

    fn install(&mut self, page_id: u64, data: Vec<u8>, dirty: bool) -> Result<()> {
        if self.frames.len() < self.capacity {
            let idx = self.frames.len();
            self.frames.push(Frame {
                page_id,
                data,
                dirty,
                referenced: true,
            });
            self.index.insert(page_id, idx);
            return Ok(());
        }
        let idx = self.evict_one()?;
        self.index.remove(&self.frames[idx].page_id);
        self.frames[idx] = Frame {
            page_id,
            data,
            dirty,
            referenced: true,
        };
        self.index.insert(page_id, idx);
        Ok(())
    }

    /// CLOCK eviction: sweep until an unreferenced frame is found, clearing reference
    /// bits along the way; write the victim back if dirty. Returns the freed frame index.
    fn evict_one(&mut self) -> Result<usize> {
        loop {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % self.frames.len();
            if self.frames[idx].referenced {
                self.frames[idx].referenced = false;
                continue;
            }
            if self.frames[idx].dirty {
                let (pid, data) = (
                    self.frames[idx].page_id,
                    std::mem::take(&mut self.frames[idx].data),
                );
                self.store.write_page(pid, &data)?;
                self.stats.dirty_evictions += 1;
            } else {
                self.stats.clean_evictions += 1;
            }
            return Ok(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_store::{MemPageStore, TracingPageStore};

    const PS: usize = 64;

    fn page(b: u8) -> Vec<u8> {
        vec![b; PS]
    }

    #[test]
    fn read_write_hit_miss_accounting() {
        let mut pool = BufferPool::new(MemPageStore::new(PS), 4);
        assert!(pool.read(1).unwrap().is_none());
        pool.write(1, page(1)).unwrap();
        assert_eq!(pool.read(1).unwrap().unwrap(), page(1));
        let s = pool.stats();
        assert_eq!(s.hits, 1); // the read-after-write
        assert!(s.misses >= 2); // the initial missing read and the write install
    }

    #[test]
    fn dirty_pages_reach_the_store_only_on_eviction_or_flush() {
        let store = TracingPageStore::new(MemPageStore::new(PS));
        let mut pool = BufferPool::new(store, 4);
        for i in 0..4u64 {
            pool.write(i, page(i as u8)).unwrap();
        }
        assert_eq!(
            pool.store().trace().len(),
            0,
            "nothing should reach the store yet"
        );
        // Overflow the pool: evictions must write dirty pages back.
        for i in 4..10u64 {
            pool.write(i, page(i as u8)).unwrap();
        }
        assert!(!pool.store().trace().is_empty());
        pool.flush_all().unwrap();
        let (trace, inner) = pool.into_store().unwrap().into_parts();
        // Every written page is durable in the inner store.
        assert_eq!(inner.distinct_pages(), 10);
        assert!(trace.len() >= 10);
    }

    #[test]
    fn repeated_access_to_hot_pages_is_absorbed() {
        let store = TracingPageStore::new(MemPageStore::new(PS));
        let mut pool = BufferPool::new(store, 8);
        // A working set that fits: repeatedly rewrite the same 4 pages.
        for round in 0..100u64 {
            for i in 0..4u64 {
                pool.write(i, page((round % 250) as u8)).unwrap();
            }
        }
        // No evictions were needed, so the store saw nothing.
        assert_eq!(pool.store().trace().len(), 0);
        assert!(pool.stats().hit_ratio() > 0.9);
    }

    #[test]
    fn evicted_then_reread_pages_survive() {
        let mut pool = BufferPool::new(MemPageStore::new(PS), 4);
        for i in 0..32u64 {
            pool.write(i, page(i as u8)).unwrap();
        }
        for i in 0..32u64 {
            assert_eq!(
                pool.read(i).unwrap().unwrap(),
                page(i as u8),
                "page {i} lost"
            );
        }
    }

    #[test]
    fn flush_all_clears_dirty_state() {
        let mut pool = BufferPool::new(MemPageStore::new(PS), 4);
        pool.write(1, page(9)).unwrap();
        pool.flush_all().unwrap();
        let before = pool.stats().flush_writes;
        pool.flush_all().unwrap();
        assert_eq!(
            pool.stats().flush_writes,
            before,
            "second flush had nothing to do"
        );
    }

    #[test]
    #[should_panic(expected = "at least two frames")]
    fn tiny_pool_rejected() {
        let _ = BufferPool::new(MemPageStore::new(PS), 1);
    }
}
