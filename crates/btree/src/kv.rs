//! [`KvStore`]: an ordered key-value store whose index is a durable **paged B+-tree
//! living in the same log-structured store as the values** — the paper's Figure 6
//! layering (a B+-tree storage engine running *on* the log store), promoted from a
//! trace generator to the actual experimental substrate.
//!
//! ## Page-id space partitioning
//!
//! One [`lss_core::LogStore`] holds three disjoint page-id ranges:
//!
//! ```text
//! [0, META_BASE)                   user value pages, one value per page
//! [META_BASE, META_BASE + 2)       the two alternating superblock slots
//! [META_BASE + 2, TREE_BASE)       legacy JSON chunk remnants only (swept on open)
//! [TREE_BASE, ...)                 B+-tree index pages (tree-local id + TREE_BASE)
//! ```
//!
//! Keys map to user page ids through the tree (values stay in the log — KV
//! separation); the tree's own pages are written through a [`BufferPool`] into the
//! reserved range, so index I/O and value I/O share the store's segments, cleaner and
//! write streams.
//!
//! ## Crash consistency: shadow epochs + superblock flip
//!
//! The tree runs in shadow (copy-on-write) mode ([`BTree::open_shadow`]): committed
//! pages are never overwritten, and every `put` relocates the value to a *fresh* user
//! page instead of updating the old one in place. [`KvStore::flush`] commits an epoch
//! with two barriers:
//!
//! 1. write back all dirty index pages (fresh ids only) and flush the store —
//!    **barrier 1**: the new tree and values are durable but unreferenced;
//! 2. write a versioned, checksummed [`Superblock`] into the alternating slot
//!    `META_BASE + epoch % 2` and flush again — **barrier 2**: the single page write
//!    that atomically flips the committed state.
//!
//! Only after barrier 2 are the epoch's superseded pages deleted and their ids
//! recycled. A crash anywhere in this protocol reopens to exactly the last committed
//! index: the old superblock still describes a fully intact tree whose pages nobody
//! touched. Reopen additionally runs a reachability sweep that reclaims pages a
//! crashed epoch left behind and reconstructs both free lists.
//!
//! ## Concurrency and lock order
//!
//! Everything takes `&self`. Value writes (the heavy I/O) happen *outside* the index
//! entirely, on the store's sharded write streams; index mutations use the tree's
//! optimistic lock-coupling (see [`crate::tree`]) — readers descend latch-free with
//! version validation, writers lock only the nodes they rewrite — so concurrent
//! writers no longer serialise on one tree latch. Point reads and scans read the
//! value pages inside a version-validated window ([`BTree::get_map`] /
//! [`BTree::scan_map`]): the leaf that maps a key to its value page is re-validated
//! *after* the value is read, and reclaiming a superseded value page happens only
//! after a commit bumped that leaf's version — so a validated value read is proven
//! not to have raced the page's release. Lock order: `epoch latch → node version
//! slot → tree allocator → pool shard latch`; the user-page allocator mutex is taken
//! either alone or (during a flush's commit phase) inside the epoch latch.
//!
//! ## Group commit
//!
//! With `group_commit_window_us > 0` ([`KvOptions`]), concurrent [`KvStore::flush`]
//! calls batch into one superblock flip: the first caller becomes the *leader* of a
//! commit generation, waits out the window while further callers become *riders* of
//! the same generation, then runs the two-barrier flip once and wakes every rider
//! with the shared outcome. A rider's mutations are always covered: they completed
//! before its `flush` call, the generation closes before the flip begins, and the
//! flip's checkpoint quiesces the tree — so the flipped epoch contains every batched
//! mutation, and a crash lands on exactly the previous or the batched epoch, never a
//! partial batch (it is one ordinary epoch). A failed flip fails the *whole*
//! generation with one shared source error — leader and riders all surface
//! [`Error::GroupCommitFailed`] around the same source, and the outcome is
//! published even if the leader unwinds mid-flip, so riders can never hang on a
//! generation that will never report. `group_commit_window_us = 0` (the default)
//! short-circuits straight into the flip — byte-for-byte today's per-call
//! behaviour.

use crate::buffer_pool::{BufferPool, BufferPoolStats};
use crate::kv_legacy::{classify_slot, read_legacy_index, LegacyChunk, SlotState, Superblock};
use crate::node::Node;
use crate::page_store::PageStore;
use crate::tree::{BTree, TreeStats};
use bytes::Bytes;
use lss_core::error::{Error, Result};
use lss_core::{LogStore, PageId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Page ids at and above this value are reserved for the KV layer's own metadata.
pub const META_BASE: PageId = 1 << 62;
/// Exclusive upper bound of the user value page range (== [`META_BASE`]: the capacity
/// guard that keeps user values out of the reserved range).
pub const USER_PAGE_LIMIT: PageId = META_BASE;
/// First page id of legacy JSON chunk remnants (chunk 1 coincides with superblock
/// slot B and is overwritten by the migration commit; chunks ≥ 2 start here).
const LEGACY_REMNANT_BASE: PageId = META_BASE + 2;
/// Base of the B+-tree index page range: tree-local page id `t` lives at
/// `TREE_BASE + t`. Far above any plausible legacy chunk count, so the ranges never
/// collide.
const TREE_BASE: PageId = META_BASE + (1 << 32);

/// The superblock slot an epoch commits into (alternating shadow-meta flip).
fn superblock_slot(epoch: u64) -> PageId {
    META_BASE + (epoch % 2)
}

/// Decode a tree value (an 8-byte LE user page id).
fn decode_user_page(v: &[u8]) -> Result<PageId> {
    let bytes: [u8; 8] = v.try_into().map_err(|_| {
        Error::CorruptCheckpoint(format!(
            "kv index value is {} bytes, expected an 8-byte page id",
            v.len()
        ))
    })?;
    Ok(PageId::from_le_bytes(bytes))
}

/// Options for opening a [`KvStore`].
#[derive(Debug, Clone)]
pub struct KvOptions {
    /// Buffer-pool capacity for index pages, in pages.
    pub pool_pages: usize,
    /// Index page size in bytes; defaults to the store's configured page size
    /// (clamped to at least 64, the tree's minimum).
    pub tree_page_bytes: Option<usize>,
    /// Group-commit window in microseconds: how long the leader of a commit
    /// generation waits for further [`KvStore::flush`] callers to batch into the
    /// same superblock flip. `0` (the default) commits per call, exactly the
    /// pre-group-commit behaviour. See the module docs.
    pub group_commit_window_us: u64,
}

impl Default for KvOptions {
    fn default() -> Self {
        Self {
            pool_pages: 256,
            tree_page_bytes: None,
            group_commit_window_us: 0,
        }
    }
}

/// Lock-free operation counters of the KV layer (`StoreStats`-style; shared shape with
/// the legacy JSON store so the bench can A/B the two formats).
#[derive(Debug, Default)]
pub(crate) struct KvCounters {
    pub(crate) puts: AtomicU64,
    pub(crate) gets: AtomicU64,
    pub(crate) deletes: AtomicU64,
    pub(crate) range_scans: AtomicU64,
    pub(crate) index_pages_written: AtomicU64,
    pub(crate) index_bytes_written: AtomicU64,
    pub(crate) value_pages_written: AtomicU64,
    pub(crate) value_bytes_written: AtomicU64,
    pub(crate) superblock_commits: AtomicU64,
    pub(crate) flush_calls: AtomicU64,
    pub(crate) group_commit_riders: AtomicU64,
}

impl KvCounters {
    pub(crate) fn snapshot(
        &self,
        pool: BufferPoolStats,
        epoch: u64,
        keys: u64,
        tree: TreeStats,
    ) -> KvStats {
        KvStats {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            range_scans: self.range_scans.load(Ordering::Relaxed),
            index_pages_written: self.index_pages_written.load(Ordering::Relaxed),
            index_bytes_written: self.index_bytes_written.load(Ordering::Relaxed),
            value_pages_written: self.value_pages_written.load(Ordering::Relaxed),
            value_bytes_written: self.value_bytes_written.load(Ordering::Relaxed),
            superblock_commits: self.superblock_commits.load(Ordering::Relaxed),
            flush_calls: self.flush_calls.load(Ordering::Relaxed),
            group_commit_riders: self.group_commit_riders.load(Ordering::Relaxed),
            epoch,
            keys,
            pool,
            tree,
        }
    }
}

/// A snapshot of the KV layer's operational statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct KvStats {
    /// `put` operations.
    pub puts: u64,
    /// `get` operations.
    pub gets: u64,
    /// `delete` operations.
    pub deletes: u64,
    /// `range` scans.
    pub range_scans: u64,
    /// Index (B+-tree or legacy JSON chunk) pages written into the log store.
    pub index_pages_written: u64,
    /// Bytes of index pages written into the log store.
    pub index_bytes_written: u64,
    /// User value pages written into the log store.
    pub value_pages_written: u64,
    /// Bytes of user values written into the log store.
    pub value_bytes_written: u64,
    /// Committed epochs (superblock flips; legacy: JSON index flushes).
    pub superblock_commits: u64,
    /// [`KvStore::flush`] calls. With group commit, several calls can share one
    /// superblock flip, so this can exceed [`KvStats::superblock_commits`].
    pub flush_calls: u64,
    /// Flush calls that rode another caller's commit generation instead of leading
    /// their own flip (0 when `group_commit_window_us = 0`).
    pub group_commit_riders: u64,
    /// Current committed epoch (0 = nothing committed yet; legacy stores report 0).
    pub epoch: u64,
    /// Number of live keys at snapshot time.
    pub keys: u64,
    /// Buffer-pool gauges for the index pages (hit ratio, evictions; zeroed for the
    /// legacy JSON store, which has no pool).
    pub pool: BufferPoolStats,
    /// Index-tree concurrency gauges: optimistic-read restarts, writer crab depth,
    /// quiesced fallbacks (zeroed for the legacy JSON store, which has no tree).
    pub tree: TreeStats,
}

impl KvStats {
    /// Index write amplification: bytes of index metadata written to the store per
    /// byte of user value written. The paged index pays only for dirty tree pages and
    /// their root path; the legacy JSON format rewrote the entire index every flush.
    pub fn index_write_amplification(&self) -> f64 {
        if self.value_bytes_written == 0 {
            0.0
        } else {
            self.index_bytes_written as f64 / self.value_bytes_written as f64
        }
    }

    /// Mean number of flush calls a superblock flip absorbed — 1.0 means no
    /// batching, higher means group commit amortised barriers across callers.
    pub fn avg_commit_batch(&self) -> f64 {
        if self.superblock_commits == 0 {
            0.0
        } else {
            self.flush_calls as f64 / self.superblock_commits as f64
        }
    }
}

/// The page store the index tree writes through: tree-local ids offset into the
/// reserved range of the shared [`LogStore`], with index-write accounting.
#[derive(Debug)]
struct KvTreeStore {
    store: Arc<LogStore>,
    page_size: usize,
    counters: Arc<KvCounters>,
}

impl PageStore for KvTreeStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, id: u64) -> Result<Option<Vec<u8>>> {
        Ok(self.store.get(TREE_BASE + id)?.map(|b| b.to_vec()))
    }

    fn write_page(&self, id: u64, data: &[u8]) -> Result<()> {
        self.counters
            .index_pages_written
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .index_bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.store.put(TREE_BASE + id, data)
    }

    fn sync(&self) -> Result<()> {
        self.store.flush()
    }
}

/// The user value page allocator: watermark + free list + this epoch's supersessions.
#[derive(Debug, Default)]
struct UserAlloc {
    /// Next never-used user page id.
    next: PageId,
    /// Reusable ids (freed by committed epochs or reconstructed on reopen).
    free: Vec<PageId>,
    /// Pages superseded this epoch; released (deleted + reusable) after the next
    /// superblock commit — never before, because the committed index still maps to
    /// them until the flip.
    freed_epoch: Vec<PageId>,
}

/// One group-commit generation: the leader publishes the flip's outcome here and
/// wakes every rider. `None` = the flip has not finished; `Some(None)` = committed;
/// `Some(Some(e))` = the flip failed with the shared source error (leader and
/// riders all surface it as [`Error::GroupCommitFailed`], so callers matching on
/// the underlying variant behave identically in either role).
#[derive(Debug, Default)]
struct CommitGeneration {
    outcome: std::sync::Mutex<Option<Option<Arc<Error>>>>,
    done: std::sync::Condvar,
}

/// The group-commit coordinator: at most one *open* generation accepts riders at a
/// time; it closes the moment its leader starts the flip, so later callers lead a
/// fresh generation (flips themselves serialise on the tree's epoch latch).
#[derive(Debug, Default)]
struct GroupCommit {
    open: std::sync::Mutex<Option<Arc<CommitGeneration>>>,
}

/// RAII for a generation's leader: on drop it closes the generation (if still the
/// open one) and publishes `outcome`, waking every rider. The ordinary path sets
/// the real flip outcome before dropping; if the leader unwinds first — a panic
/// inside the flip, say — the drop still runs with the pre-seeded failure, so
/// riders are woken with an error instead of waiting on the condvar forever.
struct GenerationPublish<'a> {
    coordinator: &'a GroupCommit,
    generation: &'a Arc<CommitGeneration>,
    outcome: Option<Arc<Error>>,
}

impl Drop for GenerationPublish<'_> {
    fn drop(&mut self) {
        let mut open = self
            .coordinator
            .open
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if open
            .as_ref()
            .is_some_and(|g| Arc::ptr_eq(g, self.generation))
        {
            // An early unwind must not leave a dead generation accepting riders.
            *open = None;
        }
        drop(open);
        *self
            .generation
            .outcome
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(self.outcome.take());
        self.generation.done.notify_all();
    }
}

/// An ordered, concurrent, crash-consistent key-value store backed by a [`LogStore`]
/// with a paged B+-tree index. See the module docs for the protocol.
#[derive(Debug)]
pub struct KvStore {
    store: Arc<LogStore>,
    tree: BTree<KvTreeStore>,
    alloc: Mutex<UserAlloc>,
    /// Last committed epoch.
    epoch: AtomicU64,
    counters: Arc<KvCounters>,
    /// Group-commit window (µs); 0 = per-call commit.
    group_commit_window_us: u64,
    group_commit: GroupCommit,
}

impl KvStore {
    /// Open a key-value store on a [`LogStore`] with default options: load the last
    /// committed paged index, **migrate** a legacy JSON index in place, or start
    /// empty on a fresh store. Corrupt metadata is an explicit error — never silently
    /// treated as empty.
    pub fn open(store: LogStore) -> Result<Self> {
        Self::open_with(store, KvOptions::default())
    }

    /// [`KvStore::open`] with explicit options.
    pub fn open_with(store: LogStore, opts: KvOptions) -> Result<Self> {
        let store = Arc::new(store);
        let slot_a = store.get(META_BASE)?;
        let slot_b = store.get(META_BASE + 1)?;
        let a = classify_slot(slot_a.as_ref());
        let b = classify_slot(slot_b.as_ref());

        // Any valid superblock wins; the newer epoch is the committed state (the other
        // slot is the previous epoch, a legacy remnant, or a victim of a mid-flip
        // crash — all fine).
        let newest = match (&a, &b) {
            (SlotState::Valid(x), SlotState::Valid(y)) => {
                Some(if x.epoch >= y.epoch { *x } else { *y })
            }
            (SlotState::Valid(x), _) => Some(*x),
            (_, SlotState::Valid(y)) => Some(*y),
            _ => None,
        };
        if let Some(sb) = newest {
            let kv = Self::load_committed(store, sb, &opts)?;
            kv.sweep_legacy_remnants()?;
            return Ok(kv);
        }
        match (a, b) {
            (SlotState::Legacy(root), _) => Self::migrate_legacy(store, root, &opts),
            (SlotState::Absent, SlotState::Absent) => Self::fresh(store, &opts),
            (SlotState::Corrupt(detail), _) => Err(Error::CorruptCheckpoint(format!(
                "kv metadata slot A is corrupt and no valid superblock exists: {detail}"
            ))),
            (SlotState::Absent, SlotState::Corrupt(detail)) => Err(Error::CorruptCheckpoint(
                format!("kv metadata slot B is corrupt and no valid superblock exists: {detail}"),
            )),
            (SlotState::Absent, SlotState::Legacy(_)) => Err(Error::CorruptCheckpoint(
                "kv metadata slot B holds a legacy chunk but the legacy root is missing".into(),
            )),
            (SlotState::Valid(_), _) | (_, SlotState::Valid(_)) => {
                unreachable!("valid superblocks handled above")
            }
        }
    }

    fn components(
        store: &Arc<LogStore>,
        opts: &KvOptions,
    ) -> Result<(BufferPool<KvTreeStore>, Arc<KvCounters>)> {
        let max_payload = lss_core::layout::max_single_payload(store.config().segment_bytes);
        let page_size = opts
            .tree_page_bytes
            .unwrap_or(store.config().page_bytes)
            .max(64);
        if page_size > max_payload {
            return Err(Error::InvalidConfig(format!(
                "kv tree page size {page_size} exceeds the segment payload limit {max_payload}"
            )));
        }
        let counters = Arc::new(KvCounters::default());
        let tree_store = KvTreeStore {
            store: Arc::clone(store),
            page_size,
            counters: Arc::clone(&counters),
        };
        Ok((
            BufferPool::new(tree_store, opts.pool_pages.max(8)),
            counters,
        ))
    }

    /// A store with no committed KV state at all.
    fn fresh(store: Arc<LogStore>, opts: &KvOptions) -> Result<Self> {
        let (pool, counters) = Self::components(&store, opts)?;
        Ok(Self {
            store,
            tree: BTree::open_shadow(pool, None)?,
            alloc: Mutex::new(UserAlloc::default()),
            epoch: AtomicU64::new(0),
            counters,
            group_commit_window_us: opts.group_commit_window_us,
            group_commit: GroupCommit::default(),
        })
    }

    /// Load the committed state a superblock describes, then sweep pages a crashed
    /// epoch may have left behind and reconstruct both free lists.
    fn load_committed(store: Arc<LogStore>, sb: Superblock, opts: &KvOptions) -> Result<Self> {
        let (pool, counters) = Self::components(&store, opts)?;
        let tree = BTree::open_shadow(pool, Some((sb.root, sb.tree_next_page, sb.len)))?;

        // Reachability walk: every committed tree page and every referenced user page.
        let mut reachable_tree: HashSet<u64> = HashSet::new();
        let mut referenced_user: HashSet<PageId> = HashSet::new();
        let mut keys = 0u64;
        let mut bad_value: Option<usize> = None;
        tree.walk(|id, node| {
            reachable_tree.insert(id);
            if let Node::Leaf { entries } = node {
                keys += entries.len() as u64;
                for (_, v) in entries {
                    match decode_user_page(v) {
                        Ok(p) => {
                            referenced_user.insert(p);
                        }
                        Err(_) => bad_value = Some(v.len()),
                    }
                }
            }
        })?;
        if let Some(len) = bad_value {
            return Err(Error::CorruptCheckpoint(format!(
                "kv index leaf holds a {len}-byte value, expected an 8-byte page id"
            )));
        }
        if keys != sb.len {
            return Err(Error::CorruptCheckpoint(format!(
                "kv superblock records {} keys but the committed tree holds {keys}",
                sb.len
            )));
        }

        // Reachability sweep over the tree range: live pages the committed tree does
        // not reach are leftovers of a crashed epoch (or releases whose tombstone the
        // crash lost) — delete them, and recycle the ids below the watermark (ids at
        // or above it are handed out again by the watermark itself). Enumerating
        // *live* pages keeps this O(tree size), never O(id-space width).
        let mut tree_free = Vec::new();
        for page in store.live_page_ids_in(TREE_BASE, PageId::MAX) {
            let id = page - TREE_BASE;
            if !reachable_tree.contains(&id) {
                store.delete(page)?;
                if id < sb.tree_next_page {
                    tree_free.push(id);
                }
            }
        }
        tree.seed_free_list(tree_free);

        // Same sweep for user value pages: live values the committed index does not
        // reference were superseded or newly written by an uncommitted epoch.
        let mut user_free = Vec::new();
        for page in store.live_page_ids_in(0, USER_PAGE_LIMIT) {
            if !referenced_user.contains(&page) {
                store.delete(page)?;
                if page < sb.user_next_page {
                    user_free.push(page);
                }
            }
        }

        Ok(Self {
            store,
            tree,
            alloc: Mutex::new(UserAlloc {
                next: sb.user_next_page,
                free: user_free,
                freed_epoch: Vec::new(),
            }),
            epoch: AtomicU64::new(sb.epoch),
            counters,
            group_commit_window_us: opts.group_commit_window_us,
            group_commit: GroupCommit::default(),
        })
    }

    /// Import a legacy JSON index into a paged tree and commit it as epoch 1.
    ///
    /// Restart-safe: nothing the import writes is reachable until the superblock flip
    /// (tree pages land in their own range, and epoch 1's superblock slot B coincides
    /// with legacy chunk 1, so even that overwrite is part of the atomic flip). The
    /// import is deterministic — sorted key order, fresh allocator — so a re-run after
    /// a mid-migration crash rewrites exactly the same pages.
    fn migrate_legacy(store: Arc<LogStore>, root: LegacyChunk, opts: &KvOptions) -> Result<Self> {
        let legacy_chunks = root.chunks;
        let (index, user_next) = read_legacy_index(&store, root)?;
        let referenced: HashSet<PageId> = index.values().copied().collect();

        let kv = Self::fresh(store, opts)?;
        for (key, page) in &index {
            kv.tree.insert(key, &page.to_le_bytes())?;
        }
        {
            let mut alloc = kv.alloc.lock();
            alloc.next = user_next;
            alloc.free = (0..user_next)
                .filter(|id| !referenced.contains(id))
                .collect();
        }
        // Commit epoch 1: after this superblock flip the JSON index is dead.
        kv.flush()?;
        // Release the legacy chunks the flip did not overwrite (chunk 0 — the root
        // slot — is overwritten by epoch 2; harmless either way, since any valid
        // superblock outranks a legacy root on open).
        for c in 2..legacy_chunks {
            kv.store.delete(META_BASE + c as u64)?;
        }
        for id in &kv.alloc.lock().free {
            kv.store.delete(*id)?;
        }
        Ok(kv)
    }

    /// Delete any legacy JSON chunk remnants left between the superblock slots and the
    /// tree range (possible if a crash interrupted a migration's post-commit cleanup).
    fn sweep_legacy_remnants(&self) -> Result<()> {
        for page in self.store.live_page_ids_in(LEGACY_REMNANT_BASE, TREE_BASE) {
            self.store.delete(page)?;
        }
        Ok(())
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.tree.len() as usize
    }

    /// True if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Insert or overwrite a key.
    ///
    /// The value is written to a freshly allocated user page *before* the index is
    /// updated (outside the tree latch, on the store's concurrent write streams); an
    /// overwritten key's old page is queued for release at the next commit — never
    /// touched in place, which is what keeps crashes on the last committed state.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.counters.puts.fetch_add(1, Ordering::Relaxed);
        if key.len() + 8 > self.tree.max_entry_size() {
            return Err(Error::PageTooLarge {
                page: 0,
                size: key.len() + 8,
                max: self.tree.max_entry_size(),
            });
        }
        let page = {
            let mut alloc = self.alloc.lock();
            match alloc.free.pop() {
                Some(id) => id,
                None => {
                    if alloc.next >= USER_PAGE_LIMIT {
                        // The capacity/overlap guard: user values must never cross
                        // into the reserved metadata range.
                        return Err(Error::PageRangeExhausted {
                            next: alloc.next,
                            limit: USER_PAGE_LIMIT,
                        });
                    }
                    let id = alloc.next;
                    alloc.next += 1;
                    id
                }
            }
        };
        if let Err(e) = self.store.put(page, value) {
            self.alloc.lock().free.push(page);
            return Err(e);
        }
        self.counters
            .value_pages_written
            .fetch_add(1, Ordering::Relaxed);
        self.counters
            .value_bytes_written
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        match self.tree.insert_returning(key, &page.to_le_bytes()) {
            Ok(Some(old)) => {
                let old_page = decode_user_page(&old)?;
                self.alloc.lock().freed_epoch.push(old_page);
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(e) => {
                // The value page is durable-but-unreferenced; release it with the
                // epoch (or, if we crash first, the reopen sweep reclaims it).
                self.alloc.lock().freed_epoch.push(page);
                Err(e)
            }
        }
    }

    /// Read a key. The value page is read under the tree's shared latch, so a
    /// concurrent flush cannot release it mid-read.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        self.counters.gets.fetch_add(1, Ordering::Relaxed);
        let got = self
            .tree
            .get_map(key, |v| self.store.get(decode_user_page(v)?))?;
        Ok(got.flatten())
    }

    /// Delete a key. Returns true if it existed. The old value page is released at
    /// the next commit.
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        self.counters.deletes.fetch_add(1, Ordering::Relaxed);
        match self.tree.delete_returning(key)? {
            Some(old) => {
                let old_page = decode_user_page(&old)?;
                self.alloc.lock().freed_epoch.push(old_page);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Iterate keys in `[start, end)` in order, reading each value. The whole scan —
    /// including the value reads — runs under the tree's shared latch, so it observes
    /// one consistent index snapshot.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Bytes)>> {
        self.counters.range_scans.fetch_add(1, Ordering::Relaxed);
        self.tree.scan_map(start, end, |k, v| {
            Ok(self
                .store
                .get(decode_user_page(v)?)?
                .map(|bytes| (k.to_vec(), bytes)))
        })
    }

    /// Commit the current epoch: the durability point.
    ///
    /// Two barriers — dirty index pages first, then the superblock flip — then the
    /// superseded pages of the epoch are released. See the module docs; a crash at any
    /// point leaves the last committed epoch intact.
    ///
    /// With a non-zero `group_commit_window_us`, concurrent callers batch into one
    /// flip (see the module's *Group commit* section); every caller returns only once
    /// a superblock covering its mutations is durable.
    pub fn flush(&self) -> Result<()> {
        self.counters.flush_calls.fetch_add(1, Ordering::Relaxed);
        if self.group_commit_window_us == 0 {
            return self.flip();
        }
        let (generation, leader) = {
            let mut open = self
                .group_commit
                .open
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            match &*open {
                Some(g) => (Arc::clone(g), false),
                None => {
                    let g = Arc::new(CommitGeneration::default());
                    *open = Some(Arc::clone(&g));
                    (g, true)
                }
            }
        };
        if !leader {
            // Rider: the leader's flip covers our mutations (they completed before
            // this call; the generation closes before the flip's checkpoint).
            self.counters
                .group_commit_riders
                .fetch_add(1, Ordering::Relaxed);
            let mut outcome = generation.outcome.lock().unwrap_or_else(|e| e.into_inner());
            while outcome.is_none() {
                outcome = generation
                    .done
                    .wait(outcome)
                    .unwrap_or_else(|e| e.into_inner());
            }
            return match outcome.as_ref().expect("loop exits only when published") {
                None => Ok(()),
                Some(shared) => Err(Error::GroupCommitFailed(Arc::clone(shared))),
            };
        }
        // Leader: wait out the window so concurrent callers can join, close the
        // generation (later callers lead the next one), flip once, publish. The
        // guard publishes on every exit — including an unwind out of the flip — so
        // a dying leader can never strand its riders in the condvar wait.
        let mut publish = GenerationPublish {
            coordinator: &self.group_commit,
            generation: &generation,
            outcome: Some(Arc::new(Error::Io(std::io::Error::other(
                "group-commit leader terminated before publishing an outcome",
            )))),
        };
        std::thread::sleep(std::time::Duration::from_micros(
            self.group_commit_window_us,
        ));
        *self
            .group_commit
            .open
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = None;
        match self.flip() {
            Ok(()) => {
                publish.outcome = None;
                drop(publish);
                Ok(())
            }
            Err(e) => {
                // One shared source for the whole generation: the leader returns
                // the same variant its riders see.
                let shared = Arc::new(e);
                publish.outcome = Some(Arc::clone(&shared));
                drop(publish);
                Err(Error::GroupCommitFailed(shared))
            }
        }
    }

    /// One two-barrier superblock flip (the body of a commit; see [`KvStore::flush`]).
    fn flip(&self) -> Result<()> {
        let mut ck = self.tree.begin_checkpoint();
        ck.write_back()?;
        self.store.flush()?; // barrier 1: new tree pages + values durable

        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        let user_next = self.alloc.lock().next;
        let sb = Superblock {
            epoch,
            root: ck.root(),
            tree_next_page: ck.next_page_id(),
            user_next_page: user_next,
            len: ck.len(),
        };
        self.store.put(superblock_slot(epoch), &sb.encode())?;
        self.store.flush()?; // barrier 2: the atomic flip — this epoch is committed

        self.epoch.store(epoch, Ordering::Relaxed);
        self.counters
            .superblock_commits
            .fetch_add(1, Ordering::Relaxed);

        // Snapshot the user pages this epoch superseded *while the checkpoint guard
        // still holds the tree latch*: every entry was pushed by a mutation that
        // completed before this checkpoint began, so the superblock just committed
        // provably does not reference it. A mutation that slips in once the latch
        // drops frees a page the committed index may still map — that entry lands
        // after this take() and waits for the next epoch.
        let freed_user = std::mem::take(&mut self.alloc.lock().freed_epoch);
        // Post-commit: release the superseded pages (no longer referenced by the
        // committed index, hence unreachable by any reader), and only *then* recycle
        // their ids — recycling first would let a concurrent writer re-allocate an id
        // whose lagging release then tombstones the new page.
        let freed_tree = ck.commit();
        for &id in &freed_tree {
            self.store.delete(TREE_BASE + id)?;
        }
        self.tree.seed_free_list(freed_tree);
        for &id in &freed_user {
            self.store.delete(id)?;
        }
        self.alloc.lock().free.extend(freed_user);
        Ok(())
    }

    /// Operational statistics of the KV layer, including the index buffer pool's
    /// hit-rate gauges.
    pub fn stats(&self) -> KvStats {
        self.counters.snapshot(
            self.tree.pool_stats(),
            self.epoch.load(Ordering::Relaxed),
            self.tree.len(),
            self.tree.stats(),
        )
    }

    /// Buffer-pool statistics for the index pages.
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.tree.pool_stats()
    }

    /// Access the underlying page store (e.g. for statistics).
    pub fn store(&self) -> &LogStore {
        &self.store
    }

    /// Consume the wrapper and return the underlying page store.
    ///
    /// Uncommitted state (anything since the last [`KvStore::flush`]) is discarded
    /// exactly as a crash would discard it.
    pub fn into_inner(self) -> LogStore {
        let KvStore { store, tree, .. } = self;
        drop(tree);
        Arc::try_unwrap(store).unwrap_or_else(|_| unreachable!("KvStore never leaks store handles"))
    }

    /// Test hook: force the user-page allocation watermark (regression tests for the
    /// reserved-range capacity guard).
    #[doc(hidden)]
    pub fn set_next_user_page_for_tests(&self, next: PageId) {
        self.alloc.lock().next = next;
    }

    /// Build the key → user-page map the committed tree describes (test helper for
    /// migration equivalence checks).
    #[doc(hidden)]
    pub fn index_snapshot_for_tests(&self) -> Result<BTreeMap<Vec<u8>, PageId>> {
        let pairs = self.tree.scan_map(b"", &[0xFFu8; 64], |k, v| {
            Ok(Some((k.to_vec(), decode_user_page(v)?)))
        })?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv_legacy::LegacyJsonKvStore;
    use lss_core::policy::PolicyKind;
    use lss_core::StoreConfig;

    fn config() -> StoreConfig {
        let mut c = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
        c.num_segments = 128;
        c
    }

    fn kv() -> KvStore {
        KvStore::open(LogStore::open_in_memory(config()).unwrap()).unwrap()
    }

    /// Flush, drop, recover the log store from its device and reopen the KV store —
    /// a clean restart.
    fn restart(kv: KvStore) -> KvStore {
        let store = kv.into_inner();
        let cfg = store.config().clone();
        let device = store.into_device();
        let recovered = LogStore::recover_with_device(cfg, device).unwrap();
        KvStore::open(recovered).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let kv = kv();
        assert!(kv.is_empty());
        kv.put(b"alpha", b"1").unwrap();
        kv.put(b"beta", b"2").unwrap();
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.get(b"alpha").unwrap().unwrap().as_ref(), b"1");
        assert!(kv.get(b"gamma").unwrap().is_none());
        assert!(kv.delete(b"alpha").unwrap());
        assert!(!kv.delete(b"alpha").unwrap());
        assert!(kv.get(b"alpha").unwrap().is_none());
    }

    #[test]
    fn overwrite_updates_value_not_key_count() {
        let kv = kv();
        kv.put(b"k", b"v1").unwrap();
        kv.put(b"k", b"v2").unwrap();
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.get(b"k").unwrap().unwrap().as_ref(), b"v2");
    }

    #[test]
    fn range_scan_is_ordered_and_half_open() {
        let kv = kv();
        for k in ["a", "b", "c", "d", "e"] {
            kv.put(k.as_bytes(), k.to_uppercase().as_bytes()).unwrap();
        }
        let out = kv.range(b"b", b"e").unwrap();
        let keys: Vec<&[u8]> = out.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(
            keys,
            vec![b"b".as_slice(), b"c".as_slice(), b"d".as_slice()]
        );
        assert_eq!(out[0].1.as_ref(), b"B");
    }

    #[test]
    fn flush_and_reopen_preserves_contents() {
        let kv = kv();
        for i in 0..300u32 {
            kv.put(
                format!("key-{i:04}").as_bytes(),
                format!("value-{i}").as_bytes(),
            )
            .unwrap();
        }
        kv.delete(b"key-0007").unwrap();
        kv.flush().unwrap();
        assert!(
            kv.stats().index_write_amplification() > 0.0,
            "index writes must be accounted"
        );

        let kv2 = restart(kv);
        assert_eq!(kv2.len(), 299);
        assert!(kv2.get(b"key-0007").unwrap().is_none());
        assert_eq!(
            kv2.get(b"key-0123").unwrap().unwrap().as_ref(),
            b"value-123"
        );
        // New writes keep working after reopen.
        kv2.put(b"key-new", b"fresh").unwrap();
        assert_eq!(kv2.get(b"key-new").unwrap().unwrap().as_ref(), b"fresh");
        kv2.flush().unwrap();
        let kv3 = restart(kv2);
        assert_eq!(kv3.len(), 300);
    }

    #[test]
    fn reopen_of_never_flushed_store_is_empty() {
        let store = LogStore::open_in_memory(config()).unwrap();
        let kv = KvStore::open(store).unwrap();
        kv.put(b"never", b"flushed").unwrap();
        let kv = restart(kv);
        assert!(kv.is_empty());
    }

    #[test]
    fn persistence_path_is_binary_not_json() {
        // The superblock a flush writes must be the binary format — not serde_json —
        // and must decode as such.
        let kv = kv();
        kv.put(b"k", b"v").unwrap();
        kv.flush().unwrap();
        let epoch = kv.stats().epoch;
        let slot = kv.store().get(superblock_slot(epoch)).unwrap().unwrap();
        let sb = Superblock::decode(&slot).expect("superblock must be binary");
        assert_eq!(sb.epoch, epoch);
        assert_eq!(sb.len, 1);
        assert_ne!(slot.first(), Some(&b'{'), "persistence path wrote JSON");
    }

    #[test]
    fn alternating_superblock_slots_are_used() {
        let kv = kv();
        kv.put(b"a", b"1").unwrap();
        kv.flush().unwrap(); // epoch 1 → slot B
        kv.put(b"b", b"2").unwrap();
        kv.flush().unwrap(); // epoch 2 → slot A
        let a = Superblock::decode(&kv.store().get(META_BASE).unwrap().unwrap()).unwrap();
        let b = Superblock::decode(&kv.store().get(META_BASE + 1).unwrap().unwrap()).unwrap();
        assert_eq!(a.epoch, 2);
        assert_eq!(b.epoch, 1);
    }

    #[test]
    fn user_page_allocation_guard_rejects_reserved_range() {
        let kv = kv();
        kv.set_next_user_page_for_tests(USER_PAGE_LIMIT - 1);
        // The last id below the limit still works…
        kv.put(b"edge", b"fits").unwrap();
        // …and the next allocation must be refused, not silently collide with
        // META_BASE (which would overwrite the superblock slot).
        let err = kv.put(b"overflow", b"nope").unwrap_err();
        assert!(
            matches!(err, Error::PageRangeExhausted { next, limit }
                if next == USER_PAGE_LIMIT && limit == USER_PAGE_LIMIT),
            "got {err}"
        );
        // The reserved slots were not clobbered: a flush + reopen still works.
        kv.flush().unwrap();
        let kv = restart(kv);
        assert_eq!(kv.get(b"edge").unwrap().unwrap().as_ref(), b"fits");
        assert!(kv.get(b"overflow").unwrap().is_none());
    }

    #[test]
    fn corrupt_metadata_is_an_explicit_error_not_an_empty_store() {
        let store = LogStore::open_in_memory(config()).unwrap();
        store
            .put(META_BASE, b"\x42 definitely not metadata")
            .unwrap();
        store.flush().unwrap();
        let err = KvStore::open(store).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)), "got {err}");
        assert!(err.to_string().contains("slot A"), "got {err}");
    }

    #[test]
    fn migrates_a_legacy_json_store_on_first_open() {
        let legacy = LegacyJsonKvStore::new(LogStore::open_in_memory(config()).unwrap());
        for i in 0..250u32 {
            legacy
                .put(
                    format!("user:{i:05}").as_bytes(),
                    format!("profile-{i}").as_bytes(),
                )
                .unwrap();
        }
        legacy.delete(b"user:00013").unwrap();
        legacy.flush().unwrap();
        let store = legacy.into_inner();

        let kv = KvStore::open(store).unwrap();
        assert_eq!(kv.len(), 249);
        assert!(kv.get(b"user:00013").unwrap().is_none());
        assert_eq!(
            kv.get(b"user:00100").unwrap().unwrap().as_ref(),
            b"profile-100"
        );
        assert!(kv.stats().epoch >= 1, "migration must commit an epoch");

        // The migrated store restarts through the superblock path (no legacy JSON).
        let kv = restart(kv);
        assert_eq!(kv.len(), 249);
        let out = kv.range(b"user:00200", b"user:00205").unwrap();
        assert_eq!(out.len(), 5);
        // And keeps working.
        kv.put(b"user:new", b"post-migration").unwrap();
        kv.flush().unwrap();
        let kv = restart(kv);
        assert_eq!(kv.len(), 250);
    }

    #[test]
    fn heavy_churn_with_cleaning_survives_restart() {
        // Overwrite far more than the device could hold without cleaning: CoW value
        // pages + CoW index pages + periodic commits must all stay consistent while
        // the cleaner relocates them.
        let kv = kv();
        let keys = 400u32;
        for round in 0..12u32 {
            for i in 0..keys {
                kv.put(
                    format!("k{i:05}").as_bytes(),
                    format!("r{round}-{i}").as_bytes(),
                )
                .unwrap();
            }
            kv.flush().unwrap();
        }
        assert!(
            kv.store().stats().cleaning_cycles > 0,
            "workload too small to exercise the cleaner"
        );
        let kv = restart(kv);
        assert_eq!(kv.len() as u32, keys);
        for i in (0..keys).step_by(37) {
            assert_eq!(
                kv.get(format!("k{i:05}").as_bytes())
                    .unwrap()
                    .unwrap()
                    .as_ref(),
                format!("r11-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn concurrent_puts_and_gets_through_shared_reference() {
        let kv = std::sync::Arc::new(kv());
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let kv = kv.clone();
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let key = format!("t{t}-k{i:04}");
                        let val = format!("t{t}-v{i}");
                        kv.put(key.as_bytes(), val.as_bytes()).unwrap();
                        let got = kv.get(key.as_bytes()).unwrap().expect("get-after-put");
                        assert_eq!(got.as_ref(), val.as_bytes());
                    }
                });
            }
        });
        assert_eq!(kv.len(), 800);
        kv.flush().unwrap();
        assert_eq!(kv.stats().keys, 800);
    }

    #[test]
    fn a_dying_leader_publishes_failure_and_closes_its_generation() {
        // Regression: a leader that unwinds mid-flip must not strand its riders
        // on the condvar (they would otherwise wait for an outcome nobody will
        // publish) nor leave the dead generation open to accept more riders.
        let coordinator = GroupCommit::default();
        let generation = Arc::new(CommitGeneration::default());
        *coordinator.open.lock().unwrap() = Some(Arc::clone(&generation));
        std::thread::scope(|scope| {
            let rider = {
                let generation = Arc::clone(&generation);
                scope.spawn(move || {
                    let mut outcome = generation.outcome.lock().unwrap_or_else(|e| e.into_inner());
                    while outcome.is_none() {
                        outcome = generation
                            .done
                            .wait(outcome)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    outcome.clone().expect("loop exits only when published")
                })
            };
            let leader = scope.spawn(|| {
                let _publish = GenerationPublish {
                    coordinator: &coordinator,
                    generation: &generation,
                    outcome: Some(Arc::new(Error::Io(std::io::Error::other(
                        "leader died mid-flip",
                    )))),
                };
                panic!("simulated flip panic");
            });
            assert!(leader.join().is_err(), "the leader must have panicked");
            let outcome = rider.join().expect("rider must be woken, not stranded");
            let err = outcome.expect("a dying leader publishes an error, not success");
            assert!(err.to_string().contains("leader died mid-flip"));
        });
        assert!(
            coordinator
                .open
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_none(),
            "the dead generation must not keep accepting riders"
        );
    }
}
