//! Per-node version latches for optimistic lock-coupling ([`VersionTable`]).
//!
//! Every tree page id hashes to one slot of a fixed power-of-two table of `AtomicU64`
//! version words. A word encodes both the lock bit and the version counter in one
//! value: **even = unlocked** (the value is the current version), **odd = locked**.
//! The three transitions are all monotonic, so a reader that observed version `v`
//! can later prove "nothing changed" by re-reading the slot and comparing:
//!
//! * `lock`: CAS `v → v + 1` (even → odd) — fails if the slot moved at all;
//! * `unlock`: `fetch_add(1)` (odd → even, one version higher than before the lock);
//! * `bump`: `fetch_add(2)` — invalidate observers without holding the lock (used
//!   for pages freed by a checkpoint commit, whose storage is about to be deleted).
//!
//! Aliasing is deliberate: two pages that hash to the same slot share a version word.
//! A writer locking one of them invalidates optimistic readers of the other — a
//! *false restart*, never a false validation, so aliasing costs throughput (bounded
//! by the table size) but not correctness. Writers only ever *try*-lock while
//! validating a previously observed version and release everything on failure, so no
//! writer blocks on a version latch while holding another — lock-order deadlocks are
//! impossible by construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of version slots (must be a power of two). 4096 words = 32 KiB; false
/// sharing between hot pages is already unlikely at a few hundred live tree pages.
const SLOTS: usize = 4096;

/// A fixed table of per-page version latches (see the module docs).
pub struct VersionTable {
    slots: Box<[AtomicU64]>,
}

impl std::fmt::Debug for VersionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionTable")
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl Default for VersionTable {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionTable {
    /// Create a table with all versions at 0 (unlocked).
    pub fn new() -> Self {
        Self {
            slots: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The slot index a page id hashes to.
    #[inline]
    pub fn slot_of(&self, page: u64) -> usize {
        (lss_core::util::mix64(page) as usize) & (SLOTS - 1)
    }

    /// Spin until the page's slot is unlocked and return the observed (even)
    /// version. Lock holds are short (encode + pool write), so the spin yields to
    /// the scheduler after a few rounds rather than burning a single-core box.
    #[inline]
    pub fn stable(&self, page: u64) -> u64 {
        let slot = &self.slots[self.slot_of(page)];
        let mut spins = 0u32;
        loop {
            let v = slot.load(Ordering::Acquire);
            if v & 1 == 0 {
                return v;
            }
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// True if the page's slot no longer holds `seen` (locked, bumped, or relocked
    /// since) — the optimistic read is invalid and must restart.
    #[inline]
    pub fn changed(&self, page: u64, seen: u64) -> bool {
        self.slots[self.slot_of(page)].load(Ordering::Acquire) != seen
    }

    /// Try to lock a slot by CAS-ing the exact version the caller previously
    /// observed. Success means the protected pages are unchanged since that
    /// observation **and** the caller now holds the (odd) lock word.
    #[inline]
    pub fn try_lock_slot(&self, slot: usize, seen: u64) -> bool {
        debug_assert_eq!(seen & 1, 0, "cannot lock at an odd (locked) version");
        self.slots[slot]
            .compare_exchange(seen, seen + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Lock a slot unconditionally, spinning until the CAS lands. For quiesced
    /// writers (the tree's epoch latch held exclusively): no optimistic writer can
    /// hold a slot then, so the spin succeeds immediately in practice — it exists
    /// so the version word is odd across the quiesced writer's pool writes, making
    /// concurrent optimistic readers (who take no epoch latch) restart instead of
    /// validating post-write bytes against a pre-write version.
    #[inline]
    pub fn lock_slot_spin(&self, slot: usize) {
        let mut spins = 0u32;
        loop {
            let v = self.slots[slot].load(Ordering::Acquire);
            if v & 1 == 0
                && self.slots[slot]
                    .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Release a slot locked by [`VersionTable::try_lock_slot`]: the version advances
    /// past every value optimistic readers could have observed before the lock.
    #[inline]
    pub fn unlock_slot(&self, slot: usize) {
        let prev = self.slots[slot].fetch_add(1, Ordering::Release);
        debug_assert_eq!(prev & 1, 1, "unlocking a slot that was not locked");
    }

    /// Invalidate optimistic observers of a page without locking (e.g. a checkpoint
    /// commit about to delete the page's storage). Keeps lock-state parity intact.
    #[inline]
    pub fn bump(&self, page: u64) {
        self.slots[self.slot_of(page)].fetch_add(2, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_advances_the_version() {
        let t = VersionTable::new();
        let v0 = t.stable(7);
        let slot = t.slot_of(7);
        assert!(t.try_lock_slot(slot, v0));
        // Locked: a second lock attempt at any even version must fail.
        assert!(!t.try_lock_slot(slot, v0));
        assert!(t.changed(7, v0));
        t.unlock_slot(slot);
        let v1 = t.stable(7);
        assert_eq!(v1, v0 + 2, "unlock must land one version past the lock");
        assert!(t.changed(7, v0));
        assert!(!t.changed(7, v1));
    }

    #[test]
    fn bump_invalidates_without_locking() {
        let t = VersionTable::new();
        let v0 = t.stable(42);
        t.bump(42);
        assert!(t.changed(42, v0));
        let v1 = t.stable(42);
        assert_eq!(v1, v0 + 2);
        // Still lockable afterwards.
        assert!(t.try_lock_slot(t.slot_of(42), v1));
        t.unlock_slot(t.slot_of(42));
    }

    #[test]
    fn stable_waits_out_a_held_lock() {
        let t = std::sync::Arc::new(VersionTable::new());
        let slot = t.slot_of(9);
        let v0 = t.stable(9);
        assert!(t.try_lock_slot(slot, v0));
        let t2 = t.clone();
        let h = std::thread::spawn(move || t2.stable(9));
        std::thread::sleep(std::time::Duration::from_millis(10));
        t.unlock_slot(slot);
        assert_eq!(h.join().unwrap(), v0 + 2);
    }
}
