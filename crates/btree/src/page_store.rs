//! Page stores: where the B+-tree's fixed-size pages live.
//!
//! The tree only needs `read_page` / `write_page`, and — since the shared-handle
//! refactor — every method takes `&self`: implementations are internally synchronised so
//! a [`crate::BufferPool`] and [`crate::BTree`] built on top can themselves be shared
//! across threads the way [`lss_core::LogStore`] already is. Three implementations are
//! provided:
//!
//! * [`MemPageStore`] — a hash map behind a `RwLock`; used when collecting TPC-C
//!   page-write traces (the trace is about *which* pages are written, not where they
//!   land).
//! * [`LssPageStore`] — pages stored in an [`lss_core::LogStore`], demonstrating the
//!   B+-tree running directly on the log-structured store (the store is already `&self`
//!   everywhere, so this is a thin shim).
//! * [`TracingPageStore`] — a wrapper recording every page write into an
//!   [`lss_workload::WriteTrace`]; placed *below* the buffer pool it captures the I/O
//!   stream an actual storage device would see, which is exactly what the paper replays
//!   for Figure 6.

use lss_core::{LogStore, Result};
use lss_workload::WriteTrace;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Storage abstraction for fixed-size B+-tree pages.
///
/// Implementations must be internally synchronised: the buffer pool calls them from any
/// thread, holding at most one of its own shard latches.
pub trait PageStore: Send + Sync {
    /// Size of every page in bytes.
    fn page_size(&self) -> usize;

    /// Read a page; `None` if it was never written.
    fn read_page(&self, id: u64) -> Result<Option<Vec<u8>>>;

    /// Write (or overwrite) a page. `data` must be exactly `page_size` bytes.
    fn write_page(&self, id: u64, data: &[u8]) -> Result<()>;

    /// Flush any buffering to the underlying medium.
    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// In-memory page store backed by a hash map.
#[derive(Debug)]
pub struct MemPageStore {
    page_size: usize,
    pages: RwLock<HashMap<u64, Vec<u8>>>,
    writes: AtomicU64,
}

impl MemPageStore {
    /// Create a store for pages of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        Self {
            page_size,
            pages: RwLock::new(HashMap::new()),
            writes: AtomicU64::new(0),
        }
    }

    /// Number of distinct pages stored.
    pub fn distinct_pages(&self) -> usize {
        self.pages.read().len()
    }

    /// Number of page writes performed.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }
}

impl PageStore for MemPageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, id: u64) -> Result<Option<Vec<u8>>> {
        Ok(self.pages.read().get(&id).cloned())
    }

    fn write_page(&self, id: u64, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), self.page_size, "page {id} has the wrong size");
        self.pages.write().insert(id, data.to_vec());
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Pages stored in a log-structured store ([`lss_core::LogStore`]).
#[derive(Debug)]
pub struct LssPageStore {
    store: LogStore,
    page_size: usize,
}

impl LssPageStore {
    /// Wrap a `LogStore`; `page_size` should match the store's configured nominal page
    /// size for best packing but any size up to the segment payload limit works.
    pub fn new(store: LogStore, page_size: usize) -> Self {
        Self { store, page_size }
    }

    /// Access the underlying log store (e.g. for statistics or checkpointing).
    pub fn inner(&self) -> &LogStore {
        &self.store
    }

    /// Consume the wrapper and return the underlying log store.
    pub fn into_inner(self) -> LogStore {
        self.store
    }
}

impl PageStore for LssPageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&self, id: u64) -> Result<Option<Vec<u8>>> {
        Ok(self.store.get(id)?.map(|b| b.to_vec()))
    }

    fn write_page(&self, id: u64, data: &[u8]) -> Result<()> {
        self.store.put(id, data)
    }

    fn sync(&self) -> Result<()> {
        self.store.flush()
    }
}

/// Records every page write that reaches the wrapped store.
#[derive(Debug)]
pub struct TracingPageStore<S: PageStore> {
    inner: S,
    trace: Mutex<WriteTrace>,
}

impl<S: PageStore> TracingPageStore<S> {
    /// Wrap a store.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            trace: Mutex::new(WriteTrace::new()),
        }
    }

    /// A snapshot of the trace recorded so far.
    pub fn trace(&self) -> WriteTrace {
        self.trace.lock().clone()
    }

    /// Number of writes recorded so far (cheaper than cloning the whole trace).
    pub fn trace_len(&self) -> usize {
        self.trace.lock().len()
    }

    /// Consume the wrapper, returning the trace and the inner store.
    pub fn into_parts(self) -> (WriteTrace, S) {
        (self.trace.into_inner(), self.inner)
    }
}

impl<S: PageStore> PageStore for TracingPageStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_page(&self, id: u64) -> Result<Option<Vec<u8>>> {
        self.inner.read_page(id)
    }

    fn write_page(&self, id: u64, data: &[u8]) -> Result<()> {
        self.trace.lock().record(id);
        self.inner.write_page(id, data)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::{policy::PolicyKind, StoreConfig};

    #[test]
    fn mem_store_roundtrip() {
        let s = MemPageStore::new(128);
        assert!(s.read_page(1).unwrap().is_none());
        s.write_page(1, &[7u8; 128]).unwrap();
        assert_eq!(s.read_page(1).unwrap().unwrap(), vec![7u8; 128]);
        assert_eq!(s.distinct_pages(), 1);
        assert_eq!(s.writes(), 1);
    }

    #[test]
    #[should_panic(expected = "wrong size")]
    fn mem_store_rejects_wrong_size() {
        let s = MemPageStore::new(128);
        s.write_page(1, &[0u8; 64]).unwrap();
    }

    #[test]
    fn mem_store_is_shareable_across_threads() {
        let s = std::sync::Arc::new(MemPageStore::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..50u64 {
                        s.write_page(t * 1000 + i, &[t as u8; 64]).unwrap();
                    }
                });
            }
        });
        assert_eq!(s.distinct_pages(), 200);
        assert_eq!(s.writes(), 200);
    }

    #[test]
    fn lss_store_roundtrip() {
        let store =
            LogStore::open_in_memory(StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc))
                .unwrap();
        let ps = LssPageStore::new(store, 256);
        assert_eq!(ps.page_size(), 256);
        ps.write_page(5, &[3u8; 256]).unwrap();
        ps.sync().unwrap();
        assert_eq!(ps.read_page(5).unwrap().unwrap(), vec![3u8; 256]);
        assert!(ps.read_page(6).unwrap().is_none());
        assert!(ps.inner().stats().user_pages_written >= 1);
    }

    #[test]
    fn tracing_store_records_writes_only() {
        let s = TracingPageStore::new(MemPageStore::new(64));
        s.write_page(10, &[0u8; 64]).unwrap();
        s.write_page(11, &[0u8; 64]).unwrap();
        s.write_page(10, &[1u8; 64]).unwrap();
        let _ = s.read_page(10).unwrap();
        assert_eq!(s.trace().writes, vec![10, 11, 10]);
        assert_eq!(s.trace_len(), 3);
        let (trace, inner) = s.into_parts();
        assert_eq!(trace.len(), 3);
        assert_eq!(inner.distinct_pages(), 2);
    }
}
