//! # lss-btree — a page-based B+-tree storage engine on the log-structured store
//!
//! The paper's Figure 6 experiment replays *"I/O traces collected from running the TPC-C
//! benchmark on a B+-tree-based storage engine"* through the cleaning simulator. This
//! crate is that storage engine — and, since the paged-index refactor, also the
//! workspace's real KV substrate: everything is internally synchronised (`&self`), so
//! trees and KV stores compose with [`lss_core::SharedLogStore`]-style shared handles:
//!
//! * [`page_store`] — where pages live: in memory, in an [`lss_core::LogStore`], or
//!   wrapped by a tracer that records the page-write I/O stream;
//! * [`buffer_pool`] — a sharded CLOCK buffer cache with dirty-page tracking and
//!   ordered write-back, so only evictions and checkpoints reach storage (this is what
//!   gives the trace its skew and its shifting hot/cold pattern);
//! * [`node`] / [`tree`] — the B+-tree itself: byte-string keys and values, node
//!   splits, successor-descent range scans, optimistic lock-coupling (version-validated
//!   latch-free reads via [`latch`], writers locking only the nodes they rewrite), and
//!   an optional shadow (copy-on-write) mode for crash-consistent checkpoints;
//! * [`kv`] — [`kv::KvStore`]: an ordered key-value store whose paged index *and*
//!   values live in one log-structured store, committed by an atomic superblock flip;
//! * [`kv_legacy`] — the retired JSON index format: detection, migration support and
//!   a legacy writer for A/B benchmarks.
//!
//! See `examples/btree_on_lss.rs` and `examples/kv_on_lss.rs` at the workspace root.
//!
//! ```
//! use lss_btree::{BTree, BufferPool, MemPageStore};
//!
//! let pool = BufferPool::new(MemPageStore::new(4096), 256);
//! let tree = BTree::open(pool).unwrap();
//! tree.insert(b"hello", b"world").unwrap();
//! assert_eq!(tree.get(b"hello").unwrap().unwrap(), b"world");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer_pool;
pub mod kv;
pub mod kv_legacy;
pub mod latch;
pub mod node;
pub mod page_store;
pub mod tree;

pub use buffer_pool::{BufferPool, BufferPoolStats};
pub use kv::{KvOptions, KvStats, KvStore};
pub use kv_legacy::LegacyJsonKvStore;
pub use page_store::{LssPageStore, MemPageStore, PageStore, TracingPageStore};
pub use tree::{BTree, TreeCheckpoint, TreeStats};
