//! # lss-btree — a page-based B+-tree storage engine substrate
//!
//! The paper's Figure 6 experiment replays *"I/O traces collected from running the TPC-C
//! benchmark on a B+-tree-based storage engine"* through the cleaning simulator. This
//! crate is that storage engine, built from scratch so the whole experiment can be
//! regenerated:
//!
//! * [`page_store`] — where pages live: in memory, in an [`lss_core::LogStore`], or
//!   wrapped by a tracer that records the page-write I/O stream;
//! * [`buffer_pool`] — a CLOCK buffer cache, so only evictions and flushes reach storage
//!   (this is what gives the trace its skew and its shifting hot/cold pattern);
//! * [`node`] / [`tree`] — the B+-tree itself: byte-string keys and values, node splits,
//!   range scans via leaf links.
//!
//! It doubles as an example application of the log-structured store: see
//! `examples/btree_on_lss.rs` at the workspace root.
//!
//! ```
//! use lss_btree::{BTree, BufferPool, MemPageStore};
//!
//! let pool = BufferPool::new(MemPageStore::new(4096), 256);
//! let mut tree = BTree::open(pool).unwrap();
//! tree.insert(b"hello", b"world").unwrap();
//! assert_eq!(tree.get(b"hello").unwrap().unwrap(), b"world");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer_pool;
pub mod node;
pub mod page_store;
pub mod tree;

pub use buffer_pool::{BufferPool, BufferPoolStats};
pub use page_store::{LssPageStore, MemPageStore, PageStore, TracingPageStore};
pub use tree::BTree;
