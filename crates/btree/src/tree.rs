//! The B+-tree itself: ordered byte-string keys and values over fixed-size pages served
//! by a [`BufferPool`] — internally synchronised, so a shared tree serves concurrent
//! readers and writers through `&self`.
//!
//! Features: point lookups, inserts/updates with recursive node splits, deletes (without
//! rebalancing — pages may become underfull, which is harmless for the workloads here),
//! and ordered range scans. Scans walk the tree by **successor descent** rather than
//! leaf sibling links: the descent to a leaf remembers the smallest separator to the
//! right of its path, which is exactly the first key of the next leaf — so no persistent
//! `next` pointers are needed. That matters for shadow mode (below): with on-page links,
//! relocating one leaf would force rewriting its left neighbour, cascading through the
//! whole chain.
//!
//! ## Concurrency: optimistic lock-coupling
//!
//! There is no tree-level reader/writer latch on the hot path. Every page id maps to a
//! version word in a [`VersionTable`]; every node write bumps its page's version.
//!
//! * **Readers** descend latch-free: read a page snapshot from the pool, re-check the
//!   page's version, hand over to the child (validating the parent once more after
//!   capturing the child's version), and — crucially — re-validate the leaf *after*
//!   applying the caller's closure to a value, so anything the value references (e.g.
//!   a KV value page) is proven not to have been superseded mid-read. Any version
//!   mismatch restarts the descent. Descents search the *encoded* pages directly
//!   (`node::raw_internal_search` / `raw_leaf_search`) — a validated snapshot is
//!   parsed in place, never decoded into an owned node, so the read path allocates
//!   nothing.
//! * **Writers** descend optimistically recording the path (raw page snapshots, same
//!   zero-decode search), compute exactly which suffix of the path a mutation
//!   rewrites (the leaf, plus every ancestor reached by a split or a shadow
//!   relocation), then try-lock exactly those nodes' version slots
//!   by CAS-ing the versions observed during the descent — crabbing that takes
//!   exclusive latches only on nodes that actually change. Any CAS failure releases
//!   everything and restarts. Writers never block on a version slot while holding
//!   another, so latch deadlocks are impossible.
//! * **Checkpoints** (and walks, and flushes) take the tree's *epoch latch*
//!   exclusively; every mutation holds it shared. This replaces the old exclusive
//!   tree latch for exactly one job: freezing the epoch's page set while a
//!   [`TreeCheckpoint`] runs. After `OPT_RETRIES` failed optimistic attempts an
//!   operation falls back to the epoch latch's exclusive side, which quiesces all
//!   writers — guaranteed progress, no starvation in either direction. Optimistic
//!   readers take **no** epoch latch, so quiesced mutations still follow the
//!   lock-during-write discipline: every page they write stays version-locked
//!   (odd) until the root is published. Fallback scans quiesce one leaf at a
//!   time rather than pinning writers for the scan's whole tail.
//!
//! Lock order: epoch latch → version slot → allocator mutex → pool shard latch (each
//! a leaf with respect to the ones after it; the pool never takes a tree lock).
//!
//! ## Shadow (copy-on-write) mode
//!
//! A tree opened with [`BTree::open_shadow`] never overwrites a *committed* page: the
//! first time an epoch modifies a node, the node is relocated to a freshly allocated
//! page id and the old id is queued on a freed list (path copying — the parent is being
//! rewritten anyway to repoint at the relocated child, all the way to the root). Pages
//! allocated since the last commit are "fresh" and are updated in place. A
//! [`TreeCheckpoint`] then makes the epoch durable: write back the dirty pages (all of
//! them fresh ids), let the caller place a commit record (the KV layer's superblock)
//! pointing at the new root, and only then release the freed ids for reuse — bumping
//! the freed pages' versions first, so optimistic readers still standing on a stale
//! path restart instead of chasing reclaimed pages. Crash at any point and the
//! previously committed root still describes a fully intact tree. Stand-alone trees
//! ([`BTree::open`]) skip all of this and update pages in place, which keeps the TPC-C
//! page-write traces of the Figure 6 experiment faithful.

use crate::buffer_pool::BufferPool;
use crate::latch::VersionTable;
use crate::node::{
    raw_internal_search, raw_is_leaf, raw_leaf_entries, raw_leaf_search, MetaPage, Node,
    LEAF_HEADER_BYTES,
};
use crate::page_store::PageStore;
use lss_core::error::{Error, Result};
use parking_lot::{Mutex, RwLock, RwLockWriteGuard};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Page id of the metadata page (stand-alone mode only; never allocated to nodes).
const META_PAGE: u64 = 0;

/// Failed optimistic attempts before an operation falls back to the exclusive side of
/// the epoch latch (quiescing writers). High enough that the fallback is rare under
/// ordinary contention, low enough to bound tail latency under pathological aliasing.
const OPT_RETRIES: u32 = 8;

/// Allocator state: the page-id watermark plus the shadow epoch's page sets.
#[derive(Debug)]
struct AllocState {
    /// Next never-used page id (the allocation watermark).
    next_page_id: u64,
    /// Shadow mode: pages allocated since the last commit — safe to update in place.
    fresh: HashSet<u64>,
    /// Shadow mode: committed pages superseded this epoch; reusable after commit.
    freed: Vec<u64>,
    /// Shadow mode: page ids free for reuse (freed by previously committed epochs).
    free: Vec<u64>,
}

/// Lock-free concurrency counters (see [`TreeStats`]).
#[derive(Debug, Default)]
struct TreeCounters {
    read_restarts: AtomicU64,
    write_restarts: AtomicU64,
    writer_ops: AtomicU64,
    writer_locks: AtomicU64,
    read_fallbacks: AtomicU64,
    write_fallbacks: AtomicU64,
}

/// A snapshot of the tree's optimistic-lock-coupling statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Optimistic reader descents that hit a version change and restarted.
    pub read_restarts: u64,
    /// Writer attempts that failed validation/locking and restarted.
    pub write_restarts: u64,
    /// Mutations (inserts + deletes) that modified the tree or probed it.
    pub writer_ops: u64,
    /// Version-slot locks taken by writers (crabbing locks; see
    /// [`TreeStats::avg_crab_depth`]).
    pub writer_locks: u64,
    /// Reads that exhausted their optimistic retries and quiesced the writers.
    pub read_fallbacks: u64,
    /// Writes that exhausted their optimistic retries and quiesced the writers.
    pub write_fallbacks: u64,
}

impl TreeStats {
    /// Mean number of version locks a mutation held — 1.0 means pure leaf-only
    /// crabbing, higher means splits/relocations reached ancestors.
    pub fn avg_crab_depth(&self) -> f64 {
        if self.writer_ops == 0 {
            0.0
        } else {
            self.writer_locks as f64 / self.writer_ops as f64
        }
    }
}

/// An ordered key/value B+-tree over a page store.
#[derive(Debug)]
pub struct BTree<S: PageStore> {
    pool: BufferPool<S>,
    page_size: usize,
    /// Copy-on-write mode (see the module docs).
    shadow: bool,
    /// Page id of the root node (changes under the root's version lock).
    root: AtomicU64,
    /// Number of live keys.
    len: AtomicU64,
    alloc: Mutex<AllocState>,
    versions: VersionTable,
    /// Shared by every mutation, exclusive for checkpoints/walks/fallbacks.
    epoch_latch: RwLock<()>,
    counters: TreeCounters,
}

/// One step of a writer's recorded descent. The page image is kept as the raw
/// validated snapshot — internal nodes are only decoded if the mutation actually
/// rewrites them (most descents never decode anything but the leaf).
struct PathEntry {
    page: u64,
    ver: u64,
    bytes: std::sync::Arc<Vec<u8>>,
    /// The child slot the descent took (internal nodes; 0 for the leaf).
    idx: usize,
}

/// Per-level decisions of a mutation, computed *exactly* from the descent snapshots
/// before any lock or allocation, so the apply phase follows the plan verbatim.
#[derive(Debug, Default, Clone)]
struct LevelPlan {
    /// Shadow mode: the node moves to a new page id (it was not fresh this epoch).
    relocate: bool,
    /// The rewritten node overflows and splits.
    split: bool,
}

/// Outcome of one optimistic attempt.
enum Attempt<T> {
    Done(T),
    Conflict,
}

/// RAII over a set of locked version slots: always unlocks, even on an error path
/// (an unlock bumps the version, so observers of a half-applied mutation restart).
struct SlotLocks<'a> {
    table: &'a VersionTable,
    slots: Vec<usize>,
}

impl SlotLocks<'_> {
    /// Take `page`'s slot unconditionally (spinning) unless this set already holds
    /// it. The quiesced paths use this: they are the sole mutator (epoch latch held
    /// exclusively), but optimistic readers take no epoch latch, so every page they
    /// write must still be covered by a locked (odd) version word until the whole
    /// mutation — including the root publication — is done. Without it a reader
    /// could validate post-write bytes against the pre-write version, or mix an
    /// old parent snapshot with a new child mid-split.
    fn lock_spin(&mut self, page: u64) {
        let slot = self.table.slot_of(page);
        if !self.slots.contains(&slot) {
            self.table.lock_slot_spin(slot);
            self.slots.push(slot);
        }
    }
}

impl Drop for SlotLocks<'_> {
    fn drop(&mut self) {
        for &s in &self.slots {
            self.table.unlock_slot(s);
        }
    }
}

impl<S: PageStore> BTree<S> {
    /// Open (or initialise) a stand-alone tree on a buffer pool: pages are updated in
    /// place and the tree's metadata lives in page 0, written by [`BTree::flush`]. If
    /// the store already contains a tree (its meta page decodes), it is reused.
    pub fn open(pool: BufferPool<S>) -> Result<Self> {
        let page_size = Self::check_page_size(&pool)?;
        let meta = match pool.read(META_PAGE)? {
            Some(bytes) => MetaPage::decode(&bytes)?,
            None => {
                // Fresh store: page 1 becomes an empty root leaf.
                let meta = MetaPage {
                    root: 1,
                    next_page_id: 2,
                    len: 0,
                };
                pool.write(1, Node::empty_leaf().encode(page_size)?)?;
                pool.write(META_PAGE, meta.encode(page_size))?;
                meta
            }
        };
        Ok(Self::assemble(pool, page_size, false, meta, HashSet::new()))
    }

    /// Open a tree in shadow (copy-on-write) mode.
    ///
    /// `frontier` is the last committed `(root, next_page_id, len)` — recorded by the
    /// caller's commit record (e.g. the KV superblock) — or `None` to initialise a
    /// fresh empty tree whose first pages materialise only at the first checkpoint.
    /// Shadow trees never touch page 0 and never overwrite a committed page; see the
    /// module docs for the epoch protocol.
    pub fn open_shadow(pool: BufferPool<S>, frontier: Option<(u64, u64, u64)>) -> Result<Self> {
        let page_size = Self::check_page_size(&pool)?;
        let (meta, fresh) = match frontier {
            Some((root, next_page_id, len)) => {
                if root == META_PAGE || root >= next_page_id {
                    return Err(Error::CorruptCheckpoint(format!(
                        "btree frontier root {root} outside (0, {next_page_id})"
                    )));
                }
                (
                    MetaPage {
                        root,
                        next_page_id,
                        len,
                    },
                    HashSet::new(),
                )
            }
            None => {
                // Fresh tree: root leaf at page 1, fresh (dirty in the pool only).
                pool.write(1, Node::empty_leaf().encode(page_size)?)?;
                (
                    MetaPage {
                        root: 1,
                        next_page_id: 2,
                        len: 0,
                    },
                    HashSet::from([1]),
                )
            }
        };
        Ok(Self::assemble(pool, page_size, true, meta, fresh))
    }

    fn assemble(
        pool: BufferPool<S>,
        page_size: usize,
        shadow: bool,
        meta: MetaPage,
        fresh: HashSet<u64>,
    ) -> Self {
        Self {
            pool,
            page_size,
            shadow,
            root: AtomicU64::new(meta.root),
            len: AtomicU64::new(meta.len),
            alloc: Mutex::new(AllocState {
                next_page_id: meta.next_page_id,
                fresh,
                freed: Vec::new(),
                free: Vec::new(),
            }),
            versions: VersionTable::new(),
            epoch_latch: RwLock::new(()),
            counters: TreeCounters::default(),
        }
    }

    fn check_page_size(pool: &BufferPool<S>) -> Result<usize> {
        let page_size = pool.page_size();
        if page_size < 64 {
            return Err(Error::InvalidConfig(format!(
                "page size {page_size} too small for a B+-tree"
            )));
        }
        Ok(page_size)
    }

    /// Largest key+value payload the tree accepts (a quarter page, so that any two
    /// entries always fit after a split).
    pub fn max_entry_size(&self) -> usize {
        self.page_size / 4
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// True if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffer-pool statistics (hit ratio, evictions).
    pub fn pool_stats(&self) -> crate::buffer_pool::BufferPoolStats {
        self.pool.stats()
    }

    /// Optimistic-lock-coupling statistics (restarts, crab depth, fallbacks).
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            read_restarts: self.counters.read_restarts.load(Ordering::Relaxed),
            write_restarts: self.counters.write_restarts.load(Ordering::Relaxed),
            writer_ops: self.counters.writer_ops.load(Ordering::Relaxed),
            writer_locks: self.counters.writer_locks.load(Ordering::Relaxed),
            read_fallbacks: self.counters.read_fallbacks.load(Ordering::Relaxed),
            write_fallbacks: self.counters.write_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// The buffer pool (e.g. for dirty-page gauges).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// The underlying page store (without flushing; dirty pages may still be cached).
    pub fn store(&self) -> &S {
        self.pool.store()
    }

    /// Seed the reusable-page-id list (shadow mode; used when reopening a tree whose
    /// free list was reconstructed by a reachability sweep).
    pub fn seed_free_list(&self, ids: impl IntoIterator<Item = u64>) {
        self.alloc.lock().free.extend(ids);
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_map(key, |v| Ok(v.to_vec()))
    }

    /// Look up a key and transform the value under optimistic validation: after `f`
    /// runs, the leaf's version is re-checked, and on any concurrent change the whole
    /// lookup restarts (so `f` may run more than once). A validated result proves the
    /// entry — and whatever the value references (e.g. a KV value page in the log
    /// store) — was current while `f` read it.
    pub fn get_map<R>(
        &self,
        key: &[u8],
        mut f: impl FnMut(&[u8]) -> Result<R>,
    ) -> Result<Option<R>> {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            if attempts > OPT_RETRIES {
                self.counters.read_fallbacks.fetch_add(1, Ordering::Relaxed);
                let _quiesced = self.epoch_latch.write();
                let (entries, _) = self.find_leaf(key)?;
                return match entries.iter().find(|(k, _)| k.as_slice() == key) {
                    Some((_, v)) => f(v).map(Some),
                    None => Ok(None),
                };
            }
            match self.try_get(key, &mut f)? {
                Attempt::Done(out) => return Ok(out),
                Attempt::Conflict => {
                    self.counters.read_restarts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// One optimistic lookup attempt.
    fn try_get<R>(
        &self,
        key: &[u8],
        f: &mut impl FnMut(&[u8]) -> Result<R>,
    ) -> Result<Attempt<Option<R>>> {
        let mut page = self.root.load(Ordering::Acquire);
        let mut ver = self.versions.stable(page);
        if self.root.load(Ordering::Acquire) != page {
            return Ok(Attempt::Conflict);
        }
        loop {
            let Some(bytes) = self.pool.read(page)? else {
                if self.versions.changed(page, ver) {
                    return Ok(Attempt::Conflict);
                }
                return Err(missing_page(page));
            };
            if self.versions.changed(page, ver) {
                return Ok(Attempt::Conflict);
            }
            // The snapshot is consistent (version stable across the read), so the
            // raw searches below parse committed bytes — no decode, no allocation.
            if raw_is_leaf(&bytes)? {
                let Some(v) = raw_leaf_search(&bytes, key)? else {
                    return Ok(Attempt::Done(None));
                };
                let out = f(v);
                // Validate *after* f: proves the value (and anything it points
                // at) was still current while f read it. On a change, discard
                // whatever f produced — including an error — and restart.
                if self.versions.changed(page, ver) {
                    return Ok(Attempt::Conflict);
                }
                return out.map(|r| Attempt::Done(Some(r)));
            }
            let (_, child, _) = raw_internal_search(&bytes, key)?;
            let child_ver = self.versions.stable(child);
            if self.versions.changed(page, ver) {
                return Ok(Attempt::Conflict);
            }
            page = child;
            ver = child_ver;
        }
    }

    /// Ordered scan of all `(key, value)` pairs with `start <= key < end`.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_map(start, end, |k, v| Ok(Some((k.to_vec(), v.to_vec()))))
    }

    /// Ordered scan of `start <= key < end`, applying `f` to each entry under
    /// optimistic validation; entries for which `f` returns `Ok(None)` are skipped.
    ///
    /// Atomicity is per leaf: each emitted entry was validated against its leaf's
    /// version *after* `f` read it, and a restart resumes just past the last emitted
    /// key — so the scan observes every key that existed for the scan's whole
    /// duration exactly once, in order, but concurrent mutations may land between
    /// leaves (same as any cursor-based scan). `f` may run more than once per entry
    /// when a conflict forces a restart; only validated results are kept.
    pub fn scan_map<R>(
        &self,
        start: &[u8],
        end: &[u8],
        mut f: impl FnMut(&[u8], &[u8]) -> Result<Option<R>>,
    ) -> Result<Vec<R>> {
        let mut out = Vec::new();
        let mut cursor = start.to_vec();
        let mut attempts = 0u32;
        loop {
            if attempts > OPT_RETRIES {
                // Quiesce writers for exactly one leaf, then resume optimistically.
                // Holding the epoch latch across the whole remainder — including
                // every invocation of `f`, which for the KV layer reads value pages
                // from the log store — would stall all writers and flushes for the
                // scan's entire tail; per-leaf the stall is bounded while `f` still
                // runs under the latch, so whatever the values reference cannot be
                // released by a concurrent checkpoint mid-read.
                self.counters.read_fallbacks.fetch_add(1, Ordering::Relaxed);
                let quiesced = self.epoch_latch.write();
                let (entries, upper) = self.find_leaf(&cursor)?;
                for (k, v) in &entries {
                    if k.as_slice() >= end {
                        return Ok(out);
                    }
                    if k.as_slice() >= cursor.as_slice() {
                        if let Some(r) = f(k, v)? {
                            out.push(r);
                        }
                    }
                }
                drop(quiesced);
                match upper {
                    None => return Ok(out),
                    Some(u) if u.as_slice() >= end => return Ok(out),
                    Some(u) => cursor = u,
                }
                attempts = 0; // guaranteed progress: the fallback finished a leaf
                continue;
            }
            match self.try_scan_leaf(&mut cursor, end, &mut f, &mut out)? {
                Attempt::Done(true) => return Ok(out),
                Attempt::Done(false) => attempts = 0, // progressed to the next leaf
                Attempt::Conflict => {
                    self.counters.read_restarts.fetch_add(1, Ordering::Relaxed);
                    attempts += 1;
                }
            }
        }
    }

    /// One optimistic scan step: descend to the leaf holding `cursor`, emit its
    /// validated entries (advancing `cursor` past each), and step `cursor` to the
    /// next leaf's smallest key. `Done(true)` means the scan is complete.
    fn try_scan_leaf<R>(
        &self,
        cursor: &mut Vec<u8>,
        end: &[u8],
        f: &mut impl FnMut(&[u8], &[u8]) -> Result<Option<R>>,
        out: &mut Vec<R>,
    ) -> Result<Attempt<bool>> {
        let mut page = self.root.load(Ordering::Acquire);
        let mut ver = self.versions.stable(page);
        if self.root.load(Ordering::Acquire) != page {
            return Ok(Attempt::Conflict);
        }
        let mut upper: Option<Vec<u8>> = None;
        let (bytes, leaf, leaf_ver) = loop {
            let Some(bytes) = self.pool.read(page)? else {
                if self.versions.changed(page, ver) {
                    return Ok(Attempt::Conflict);
                }
                return Err(missing_page(page));
            };
            if self.versions.changed(page, ver) {
                return Ok(Attempt::Conflict);
            }
            if raw_is_leaf(&bytes)? {
                break (bytes, page, ver);
            }
            let (_, child, next_upper) = raw_internal_search(&bytes, cursor)?;
            let next_upper = next_upper.map(<[u8]>::to_vec);
            let child_ver = self.versions.stable(child);
            if self.versions.changed(page, ver) {
                return Ok(Attempt::Conflict);
            }
            if let Some(u) = next_upper {
                // Deeper separators are tighter than inherited ones.
                upper = Some(u);
            }
            page = child;
            ver = child_ver;
        };
        for entry in raw_leaf_entries(&bytes)? {
            let (k, v) = entry?;
            if k >= end {
                return Ok(Attempt::Done(true));
            }
            if k < cursor.as_slice() {
                continue;
            }
            let r = f(k, v);
            // Per-entry validation *after* f (see get_map); a conflict resumes just
            // past the last key already emitted, never re-emitting it.
            if self.versions.changed(leaf, leaf_ver) {
                return Ok(Attempt::Conflict);
            }
            if let Some(r) = r? {
                out.push(r);
            }
            *cursor = successor(k);
        }
        match upper {
            None => Ok(Attempt::Done(true)),
            Some(u) if u.as_slice() >= end => Ok(Attempt::Done(true)),
            Some(u) => {
                // `u` is the smallest key of the next leaf; descending for it lands
                // exactly there.
                *cursor = u;
                Ok(Attempt::Done(false))
            }
        }
    }

    /// Visit every reachable node (pre-order), e.g. for reachability sweeps after a
    /// restart. Quiesces all writers for a stable traversal.
    pub fn walk(&self, mut f: impl FnMut(u64, &Node)) -> Result<()> {
        let _quiesced = self.epoch_latch.write();
        self.walk_rec(self.root.load(Ordering::Acquire), &mut f)
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Insert or overwrite a key.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.insert_returning(key, value).map(|_| ())
    }

    /// Insert or overwrite a key, returning the previous value if the key existed.
    pub fn insert_returning(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        if key.len() + value.len() > self.max_entry_size() {
            return Err(Error::PageTooLarge {
                page: 0,
                size: key.len() + value.len(),
                max: self.max_entry_size(),
            });
        }
        self.counters.writer_ops.fetch_add(1, Ordering::Relaxed);
        let mut attempts = 0u32;
        {
            let _epoch = self.epoch_latch.read();
            loop {
                attempts += 1;
                if attempts > OPT_RETRIES {
                    break; // fall through to the quiesced path below
                }
                match self.try_mutate(key, Some(value))? {
                    Attempt::Done(old) => return Ok(old),
                    Attempt::Conflict => {
                        self.counters.write_restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.counters
            .write_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        let _quiesced = self.epoch_latch.write();
        self.insert_quiesced(key, value)
    }

    /// Delete a key. Returns true if it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        self.delete_returning(key).map(|old| old.is_some())
    }

    /// Delete a key, returning its value if it existed.
    pub fn delete_returning(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.counters.writer_ops.fetch_add(1, Ordering::Relaxed);
        let mut attempts = 0u32;
        {
            let _epoch = self.epoch_latch.read();
            loop {
                attempts += 1;
                if attempts > OPT_RETRIES {
                    break;
                }
                match self.try_mutate(key, None)? {
                    Attempt::Done(old) => return Ok(old),
                    Attempt::Conflict => {
                        self.counters.write_restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.counters
            .write_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        let _quiesced = self.epoch_latch.write();
        self.delete_quiesced(key)
    }

    /// One optimistic mutation attempt: `value = Some(v)` inserts/overwrites,
    /// `None` deletes. Caller holds the epoch latch shared.
    fn try_mutate(&self, key: &[u8], value: Option<&[u8]>) -> Result<Attempt<Option<Vec<u8>>>> {
        // Phase 1: optimistic descent recording (page, version, snapshot, child slot).
        let Some(path) = self.descend_recording(key)? else {
            return Ok(Attempt::Conflict);
        };
        let leaf_i = path.len() - 1;

        // Phase 2: the new leaf image and the old value. Only the leaf is decoded —
        // internal snapshots stay raw unless the mutation actually rewrites them.
        let Node::Leaf { mut entries } = Node::decode(&path[leaf_i].bytes)? else {
            unreachable!("descent ends at a leaf")
        };
        let old = match (
            entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)),
            value,
        ) {
            (Ok(i), Some(v)) => Some(std::mem::replace(&mut entries[i].1, v.to_vec())),
            (Err(i), Some(v)) => {
                entries.insert(i, (key.to_vec(), v.to_vec()));
                None
            }
            (Ok(i), None) => Some(entries.remove(i).1),
            (Err(_), None) => {
                // Delete miss: the validated leaf snapshot proves absence — return
                // without locking anything (a miss must not churn shadow pages).
                return Ok(Attempt::Done(None));
            }
        };

        // Phase 3: the exact per-level plan (what relocates, what splits, where the
        // rewrite stops). Fresh-ness of a live node only changes under its version
        // lock, so the snapshot taken here stays valid as long as the CAS below
        // succeeds.
        let in_place: Vec<bool> = if !self.shadow {
            vec![true; path.len()]
        } else {
            let a = self.alloc.lock();
            path.iter().map(|p| a.fresh.contains(&p.page)).collect()
        };
        let (anchor, plans) = self.plan(&path, &in_place, &entries)?;

        // Phase 4: crab — try-lock exactly the version slots of path[anchor..] at the
        // versions the descent observed. Success proves every node we are about to
        // rewrite (and the root pointer, if anchor == 0) is unchanged since phase 1.
        let mut lock_set: Vec<(usize, u64)> = path[anchor..]
            .iter()
            .map(|p| (self.versions.slot_of(p.page), p.ver))
            .collect();
        lock_set.sort_unstable();
        lock_set.dedup();
        if lock_set.windows(2).any(|w| w[0].0 == w[1].0) {
            // Two path pages alias one slot at different versions: unprovable.
            return Ok(Attempt::Conflict);
        }
        let mut locks = SlotLocks {
            table: &self.versions,
            slots: Vec::with_capacity(lock_set.len()),
        };
        for &(slot, ver) in &lock_set {
            if !self.versions.try_lock_slot(slot, ver) {
                return Ok(Attempt::Conflict); // SlotLocks drop releases what we hold
            }
            locks.slots.push(slot);
        }
        self.counters
            .writer_locks
            .fetch_add(lock_set.len() as u64, Ordering::Relaxed);

        // Phase 5: allocate ids per plan in one short allocator hold (skipped when
        // the whole rewrite is in place — the common steady-state case), recording
        // what was queued on `freed` and what was freshly allocated so a failed
        // apply can roll the bookkeeping back.
        let mut relocated_old: Vec<u64> = Vec::new();
        let mut allocated_new: Vec<u64> = Vec::new();
        let (targets, siblings, new_root_id) =
            if plans[anchor..].iter().all(|p| !p.relocate && !p.split) {
                let targets: Vec<u64> = path[anchor..].iter().map(|p| p.page).collect();
                let siblings = vec![None; targets.len()];
                (targets, siblings, None)
            } else {
                let mut a = self.alloc.lock();
                let mut targets = Vec::with_capacity(path.len() - anchor);
                let mut siblings = Vec::with_capacity(path.len() - anchor);
                for i in anchor..path.len() {
                    if plans[i].relocate {
                        let id = self.alloc_page_locked(&mut a);
                        allocated_new.push(id);
                        targets.push(id);
                        a.freed.push(path[i].page);
                        relocated_old.push(path[i].page);
                    } else {
                        targets.push(path[i].page);
                    }
                    siblings.push(plans[i].split.then(|| {
                        let id = self.alloc_page_locked(&mut a);
                        allocated_new.push(id);
                        id
                    }));
                }
                let new_root_id = (anchor == 0 && plans[0].split).then(|| {
                    let id = self.alloc_page_locked(&mut a);
                    allocated_new.push(id);
                    id
                });
                (targets, siblings, new_root_id)
            };

        // Phase 6: apply the plan. On failure, undo phase 5 *while the version
        // locks are still held* (so no concurrent mutation can touch these pages
        // in between): the committed tree still references every page this attempt
        // queued on `freed` — leaving them there would let the next checkpoint's
        // commit delete storage the committed tree needs — and the fresh ids never
        // became reachable, so they go straight back to the free list.
        if let Err(e) = self.apply_plan(&path, anchor, entries, &targets, &siblings, new_root_id) {
            if !relocated_old.is_empty() || !allocated_new.is_empty() {
                let mut a = self.alloc.lock();
                a.freed.retain(|id| !relocated_old.contains(id));
                for &id in &allocated_new {
                    a.fresh.remove(&id);
                }
                a.free.extend_from_slice(&allocated_new);
            }
            return Err(e);
        }
        match (&old, value) {
            (None, Some(_)) => {
                self.len.fetch_add(1, Ordering::AcqRel);
            }
            (Some(_), None) => {
                self.len.fetch_sub(1, Ordering::AcqRel);
            }
            _ => {}
        }
        drop(locks);
        Ok(Attempt::Done(old))
    }

    /// Apply a mutation's plan: build and write the rewritten nodes bottom-up
    /// (children before parents), then publish the new root if it moved. Every
    /// write bumps the page's version, so optimistic readers of any rewritten or
    /// stale page restart. The caller holds the version locks of `path[anchor..]`
    /// and rolls back the allocator bookkeeping if this fails.
    fn apply_plan(
        &self,
        path: &[PathEntry],
        anchor: usize,
        mut entries: Vec<(Vec<u8>, Vec<u8>)>,
        targets: &[u64],
        siblings: &[Option<u64>],
        new_root_id: Option<u64>,
    ) -> Result<()> {
        let leaf_i = path.len() - 1;
        let mut child_id = 0u64;
        let mut carry: Option<(Vec<u8>, u64)> = None; // (separator, right sibling id)
        for i in (anchor..path.len()).rev() {
            let li = i - anchor;
            let target = targets[li];
            if i == leaf_i {
                if let Some(right_id) = siblings[li] {
                    let at = split_point(&entries, self.page_size);
                    let right = entries.split_off(at);
                    carry = Some((right[0].0.clone(), right_id));
                    self.write_node(right_id, &Node::Leaf { entries: right })?;
                }
                self.write_node(
                    target,
                    &Node::Leaf {
                        entries: std::mem::take(&mut entries),
                    },
                )?;
            } else {
                // Rewritten internal level: decode the raw snapshot now (and only
                // now), mutate the owned node, re-encode.
                let Node::Internal {
                    mut keys,
                    mut children,
                } = Node::decode(&path[i].bytes)?
                else {
                    unreachable!("descent recorded an internal level")
                };
                let idx = path[i].idx;
                children[idx] = child_id;
                if let Some((sep, right_id)) = carry.take() {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right_id);
                }
                if let Some(right_id) = siblings[li] {
                    // Split the internal node: the middle key moves up.
                    let mid = keys.len() / 2;
                    let up_key = keys[mid].clone();
                    let right = Node::Internal {
                        keys: keys[mid + 1..].to_vec(),
                        children: children[mid + 1..].to_vec(),
                    };
                    keys.truncate(mid);
                    children.truncate(mid + 1);
                    carry = Some((up_key, right_id));
                    self.write_node(right_id, &right)?;
                }
                self.write_node(target, &Node::Internal { keys, children })?;
            }
            child_id = target;
        }
        if anchor == 0 {
            if let Some((sep, right_id)) = carry.take() {
                // The root split: a new internal root above both halves.
                let id = new_root_id.expect("planned root split allocates a root id");
                self.write_node(
                    id,
                    &Node::Internal {
                        keys: vec![sep],
                        children: vec![child_id, right_id],
                    },
                )?;
                child_id = id;
            }
            if child_id != path[0].page {
                // Publish the new root before releasing the old root's lock, so a
                // restarted descent always finds a consistent entry point.
                self.root.store(child_id, Ordering::Release);
            }
        } else {
            debug_assert_eq!(child_id, path[anchor].page, "plan stopped mid-propagation");
            debug_assert!(carry.is_none(), "split escaped the planned lock scope");
        }
        Ok(())
    }

    /// Optimistic descent for a mutation, recording the full path. `None` = conflict.
    fn descend_recording(&self, key: &[u8]) -> Result<Option<Vec<PathEntry>>> {
        let mut page = self.root.load(Ordering::Acquire);
        let mut ver = self.versions.stable(page);
        if self.root.load(Ordering::Acquire) != page {
            return Ok(None);
        }
        let mut path = Vec::with_capacity(4);
        loop {
            let Some(bytes) = self.pool.read(page)? else {
                if self.versions.changed(page, ver) {
                    return Ok(None);
                }
                return Err(missing_page(page));
            };
            if self.versions.changed(page, ver) {
                return Ok(None);
            }
            if raw_is_leaf(&bytes)? {
                path.push(PathEntry {
                    page,
                    ver,
                    bytes,
                    idx: 0,
                });
                return Ok(Some(path));
            }
            let (idx, child, _) = raw_internal_search(&bytes, key)?;
            let child_ver = self.versions.stable(child);
            if self.versions.changed(page, ver) {
                return Ok(None);
            }
            path.push(PathEntry {
                page,
                ver,
                bytes,
                idx,
            });
            page = child;
            ver = child_ver;
        }
    }

    /// Compute the mutation's exact rewrite plan from the descent snapshots: which
    /// suffix of the path is rewritten (`anchor` = the highest rewritten level), and
    /// per level whether it relocates (shadow path-copy) and/or splits. Sizes are
    /// computed exactly — including the exact separator each split pushes up — so the
    /// apply phase can follow the plan without re-deciding anything.
    fn plan(
        &self,
        path: &[PathEntry],
        in_place: &[bool],
        new_entries: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(usize, Vec<LevelPlan>)> {
        let leaf_i = path.len() - 1;
        let mut plans = vec![LevelPlan::default(); path.len()];
        plans[leaf_i].relocate = !in_place[leaf_i];
        let leaf_size = LEAF_HEADER_BYTES
            + new_entries
                .iter()
                .map(|(k, v)| 4 + k.len() + v.len())
                .sum::<usize>();
        plans[leaf_i].split = leaf_size > self.page_size;
        let mut pending_sep: Option<Vec<u8>> = if plans[leaf_i].split {
            let at = split_point(new_entries, self.page_size);
            Some(new_entries[at].0.clone())
        } else {
            None
        };

        let mut anchor = leaf_i;
        for i in (0..leaf_i).rev() {
            if !plans[i + 1].relocate && pending_sep.is_none() {
                break; // the child was rewritten in place without splitting
            }
            anchor = i;
            plans[i].relocate = !in_place[i];
            if let Some(sep) = pending_sep.take() {
                // A separator propagates into this level (the child split): decode
                // the raw snapshot to size the grown node — rare enough that the
                // decode never shows up on the steady-state path.
                let node = Node::decode(&path[i].bytes)?;
                let grown = node.encoded_size() + 2 + sep.len() + 8;
                if grown > self.page_size {
                    plans[i].split = true;
                    // The key the split pushes up: the middle of the keys *after*
                    // inserting `sep` at the descent's child slot.
                    let Node::Internal { keys, .. } = &node else {
                        unreachable!("internal level")
                    };
                    let idx = path[i].idx;
                    let mid = keys.len().div_ceil(2);
                    let up_key = match mid.cmp(&idx) {
                        std::cmp::Ordering::Less => keys[mid].clone(),
                        std::cmp::Ordering::Equal => sep,
                        std::cmp::Ordering::Greater => keys[mid - 1].clone(),
                    };
                    pending_sep = Some(up_key);
                }
            }
        }
        Ok((anchor, plans))
    }

    /// Exclusive-fallback insert (caller holds the epoch latch exclusively).
    ///
    /// Optimistic readers take no epoch latch, so the quiesced writer still follows
    /// the lock-during-write discipline: every written page's version slot stays
    /// locked (odd) from its first write until the root is published, and on a
    /// failed write the allocator bookkeeping rolls back (the epoch latch excludes
    /// every other mutation, so truncating `freed` is exact).
    fn insert_quiesced(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut locks = SlotLocks {
            table: &self.versions,
            slots: Vec::new(),
        };
        let mut alloc = self.alloc.lock();
        let freed_base = alloc.freed.len();
        let result: Result<(u64, Option<Vec<u8>>)> = (|| {
            let root = self.root.load(Ordering::Acquire);
            let (new_root, old, split) =
                self.insert_rec(&mut locks, &mut alloc, root, key, value)?;
            let mut root = new_root;
            if let Some((sep, right)) = split {
                // The root split: create a new internal root.
                let new_root_id = self.alloc_page_locked(&mut alloc);
                self.write_node_quiesced(
                    &mut locks,
                    new_root_id,
                    &Node::Internal {
                        keys: vec![sep],
                        children: vec![root, right],
                    },
                )?;
                root = new_root_id;
            }
            Ok((root, old))
        })();
        match result {
            Ok((root, old)) => {
                self.root.store(root, Ordering::Release);
                if old.is_none() {
                    self.len.fetch_add(1, Ordering::AcqRel);
                }
                Ok(old)
            }
            Err(e) => {
                alloc.freed.truncate(freed_base);
                Err(e)
            }
        }
    }

    /// Exclusive-fallback delete (caller holds the epoch latch exclusively; same
    /// locking and rollback discipline as [`BTree::insert_quiesced`]).
    fn delete_quiesced(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        // Read-only probe first: a miss must not churn shadow pages.
        let mut page = self.root.load(Ordering::Acquire);
        loop {
            match self.read_node(page)? {
                Node::Internal { keys, children } => page = children[child_index(&keys, key)],
                Node::Leaf { entries } => {
                    if !entries.iter().any(|(k, _)| k.as_slice() == key) {
                        return Ok(None);
                    }
                    break;
                }
            }
        }
        let mut locks = SlotLocks {
            table: &self.versions,
            slots: Vec::new(),
        };
        let mut alloc = self.alloc.lock();
        let freed_base = alloc.freed.len();
        let root = self.root.load(Ordering::Acquire);
        match self.delete_rec(&mut locks, &mut alloc, root, key) {
            Ok((new_root, old)) => {
                self.root.store(new_root, Ordering::Release);
                self.len.fetch_sub(1, Ordering::AcqRel);
                Ok(old)
            }
            Err(e) => {
                alloc.freed.truncate(freed_base);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint / flush
    // ------------------------------------------------------------------

    /// Flush all dirty pages (and, for stand-alone trees, the meta page) to the
    /// underlying store and sync it.
    ///
    /// Shadow trees get no crash-consistency guarantee from this alone — that is what
    /// [`BTree::begin_checkpoint`] and the caller's commit record are for.
    pub fn flush(&self) -> Result<()> {
        let _quiesced = self.epoch_latch.write();
        if !self.shadow {
            let meta = MetaPage {
                root: self.root.load(Ordering::Acquire),
                next_page_id: self.alloc.lock().next_page_id,
                len: self.len.load(Ordering::Acquire),
            };
            self.pool.write(META_PAGE, meta.encode(self.page_size))?;
        }
        self.pool.flush_all()
    }

    /// Flush and return the underlying page store.
    pub fn into_store(self) -> Result<S> {
        self.flush()?;
        self.pool.into_store()
    }

    /// Take the epoch latch exclusively for a checkpoint: no mutation can run until
    /// the returned guard is committed or dropped. See [`TreeCheckpoint`].
    pub fn begin_checkpoint(&self) -> TreeCheckpoint<'_, S> {
        TreeCheckpoint {
            tree: self,
            _quiesced: self.epoch_latch.write(),
        }
    }

    // ------------------------------------------------------------------

    /// Allocate a page id (the caller holds the allocator mutex).
    fn alloc_page_locked(&self, a: &mut AllocState) -> u64 {
        let id = a.free.pop().unwrap_or_else(|| {
            let id = a.next_page_id;
            a.next_page_id += 1;
            id
        });
        if self.shadow {
            a.fresh.insert(id);
        }
        id
    }

    /// The page id a quiesced modification of `page` must be written to (see the
    /// shadow-mode module docs): the page itself when it may be updated in place,
    /// otherwise a newly allocated shadow id with `page` queued for release.
    fn shadow_id(&self, a: &mut AllocState, page: u64) -> u64 {
        if !self.shadow || a.fresh.contains(&page) {
            return page;
        }
        let id = self.alloc_page_locked(a);
        a.freed.push(page);
        id
    }

    fn read_node(&self, page: u64) -> Result<Node> {
        let bytes = self.pool.read(page)?.ok_or_else(|| missing_page(page))?;
        Node::decode(&bytes)
    }

    /// Write a node and bump its page's version: *every* node write invalidates
    /// optimistic observers of that page id — in-place rewrites (content changed),
    /// relocation targets and recycled ids (a reader parked on the id from a stale
    /// path must not validate against the new incarnation).
    fn write_node(&self, page: u64, node: &Node) -> Result<()> {
        self.pool.write(page, node.encode(self.page_size)?)?;
        self.versions.bump(page);
        Ok(())
    }

    /// [`BTree::write_node`] for the quiesced paths: the page's version slot joins
    /// `locks` (odd word) *before* the pool write and stays locked until the caller
    /// drops the set after publishing the root. The eventual unlock advances the
    /// version past anything an optimistic reader could have observed, so no
    /// separate bump is needed.
    fn write_node_quiesced(&self, locks: &mut SlotLocks<'_>, page: u64, node: &Node) -> Result<()> {
        let bytes = node.encode(self.page_size)?;
        locks.lock_spin(page);
        self.pool.write(page, bytes)
    }

    /// Descend to the leaf that would hold `key`, returning its entries together with
    /// the leaf's exclusive upper bound: the innermost separator to the right of the
    /// descent path (`None` on the rightmost spine). The upper bound is the smallest
    /// key of the *next* leaf, which is how scans walk leaves without sibling links.
    /// Caller must hold the epoch latch exclusively (no validation is performed).
    #[allow(clippy::type_complexity)]
    fn find_leaf(&self, key: &[u8]) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, Option<Vec<u8>>)> {
        let mut page = self.root.load(Ordering::Acquire);
        let mut upper: Option<Vec<u8>> = None;
        loop {
            match self.read_node(page)? {
                Node::Internal { keys, children } => {
                    let idx = child_index(&keys, key);
                    if idx < keys.len() {
                        // Deeper separators are tighter than inherited ones.
                        upper = Some(keys[idx].clone());
                    }
                    page = children[idx];
                }
                Node::Leaf { entries } => return Ok((entries, upper)),
            }
        }
    }

    fn walk_rec(&self, page: u64, f: &mut impl FnMut(u64, &Node)) -> Result<()> {
        let node = self.read_node(page)?;
        f(page, &node);
        if let Node::Internal { children, .. } = &node {
            for &c in children {
                self.walk_rec(c, f)?;
            }
        }
        Ok(())
    }

    /// Recursive insert for the quiesced path. Returns the node's (possibly
    /// relocated) page id, the previous value of the key if it existed, and the
    /// `(separator, right page)` of a node split when one propagated upward.
    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &self,
        locks: &mut SlotLocks<'_>,
        a: &mut AllocState,
        page: u64,
        key: &[u8],
        value: &[u8],
    ) -> Result<(u64, Option<Vec<u8>>, Option<(Vec<u8>, u64)>)> {
        match self.read_node(page)? {
            Node::Leaf { mut entries } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value.to_vec())),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                let page = self.shadow_id(a, page);
                let node = Node::Leaf { entries };
                if node.encoded_size() <= self.page_size {
                    self.write_node_quiesced(locks, page, &node)?;
                    return Ok((page, old, None));
                }
                // Split the leaf: move the upper half to a new page.
                let Node::Leaf { entries } = node else {
                    unreachable!()
                };
                let split_at = split_point(&entries, self.page_size);
                let right_entries = entries[split_at..].to_vec();
                let left_entries = entries[..split_at].to_vec();
                let sep = right_entries[0].0.clone();
                let right_page = self.alloc_page_locked(a);
                self.write_node_quiesced(
                    locks,
                    right_page,
                    &Node::Leaf {
                        entries: right_entries,
                    },
                )?;
                self.write_node_quiesced(
                    locks,
                    page,
                    &Node::Leaf {
                        entries: left_entries,
                    },
                )?;
                Ok((page, old, Some((sep, right_page))))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = child_index(&keys, key);
                let child = children[idx];
                let (new_child, old, split) = self.insert_rec(locks, a, child, key, value)?;
                if new_child == child && split.is_none() {
                    // Nothing about this node changed (the child was updated in
                    // place): leave it untouched so in-place trees write only what
                    // they modify and shadow trees stop the path copy here.
                    return Ok((page, old, None));
                }
                children[idx] = new_child;
                let page = self.shadow_id(a, page);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    let node = Node::Internal { keys, children };
                    if node.encoded_size() > self.page_size {
                        // Split the internal node: the middle key moves up.
                        let Node::Internal { keys, children } = node else {
                            unreachable!()
                        };
                        let mid = keys.len() / 2;
                        let up_key = keys[mid].clone();
                        let right_keys = keys[mid + 1..].to_vec();
                        let right_children = children[mid + 1..].to_vec();
                        let left_keys = keys[..mid].to_vec();
                        let left_children = children[..mid + 1].to_vec();
                        let right_page = self.alloc_page_locked(a);
                        self.write_node_quiesced(
                            locks,
                            right_page,
                            &Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        )?;
                        self.write_node_quiesced(
                            locks,
                            page,
                            &Node::Internal {
                                keys: left_keys,
                                children: left_children,
                            },
                        )?;
                        return Ok((page, old, Some((up_key, right_page))));
                    }
                    self.write_node_quiesced(locks, page, &node)?;
                    return Ok((page, old, None));
                }
                self.write_node_quiesced(locks, page, &Node::Internal { keys, children })?;
                Ok((page, old, None))
            }
        }
    }

    /// Recursive delete of a key known to exist (quiesced path). Returns the node's
    /// (possibly relocated) page id and the removed value.
    fn delete_rec(
        &self,
        locks: &mut SlotLocks<'_>,
        a: &mut AllocState,
        page: u64,
        key: &[u8],
    ) -> Result<(u64, Option<Vec<u8>>)> {
        match self.read_node(page)? {
            Node::Leaf { mut entries } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(entries.remove(i).1),
                    Err(_) => None,
                };
                if old.is_none() {
                    return Ok((page, None));
                }
                let page = self.shadow_id(a, page);
                self.write_node_quiesced(locks, page, &Node::Leaf { entries })?;
                Ok((page, old))
            }
            Node::Internal { keys, mut children } => {
                let idx = child_index(&keys, key);
                let child = children[idx];
                let (new_child, old) = self.delete_rec(locks, a, child, key)?;
                if new_child == child {
                    return Ok((page, old));
                }
                children[idx] = new_child;
                let page = self.shadow_id(a, page);
                self.write_node_quiesced(locks, page, &Node::Internal { keys, children })?;
                Ok((page, old))
            }
        }
    }
}

/// An in-progress checkpoint of a shadow-mode tree: holds the epoch latch exclusively
/// so the epoch's page set is frozen while the caller runs its commit protocol.
///
/// Intended sequence (the KV layer's two-barrier superblock flip):
///
/// 1. [`TreeCheckpoint::write_back`] — dirty pages (all fresh ids) reach the store;
/// 2. caller makes them durable (barrier 1), then durably commits a record pointing at
///    [`TreeCheckpoint::root`] / [`TreeCheckpoint::next_page_id`] (barrier 2);
/// 3. [`TreeCheckpoint::commit`] — the epoch's freed page ids become reusable and are
///    returned so the caller can release their storage.
///
/// Dropping the guard without committing aborts the epoch bookkeeping-wise: freed pages
/// stay unreleased and the next checkpoint retries, which is exactly right when a
/// barrier fails — the previously committed root is still fully intact.
pub struct TreeCheckpoint<'a, S: PageStore> {
    tree: &'a BTree<S>,
    _quiesced: RwLockWriteGuard<'a, ()>,
}

impl<S: PageStore> TreeCheckpoint<'_, S> {
    /// Write all dirty pages back to the store in ascending page-id order (no sync).
    /// Returns the page ids written.
    pub fn write_back(&mut self) -> Result<Vec<u64>> {
        self.tree.pool.write_back()
    }

    /// The root page id this checkpoint would commit.
    pub fn root(&self) -> u64 {
        self.tree.root.load(Ordering::Acquire)
    }

    /// The allocation watermark this checkpoint would commit.
    pub fn next_page_id(&self) -> u64 {
        self.tree.alloc.lock().next_page_id
    }

    /// The key count this checkpoint would commit.
    pub fn len(&self) -> u64 {
        self.tree.len.load(Ordering::Acquire)
    }

    /// True if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seal the epoch after the caller's commit record is durable: fresh pages become
    /// committed. Returns the epoch's freed page ids — no longer referenced by the
    /// committed tree — **without recycling them**: the caller releases their storage
    /// first and only then hands them back via [`BTree::seed_free_list`]. Recycling
    /// before the release is a race: a new page could be allocated at the id and then
    /// clobbered by the in-flight release of its previous incarnation.
    pub fn commit(self) -> Vec<u64> {
        let mut a = self.tree.alloc.lock();
        a.fresh.clear();
        let freed = std::mem::take(&mut a.freed);
        drop(a);
        // Invalidate optimistic readers parked on a freed page *before* the caller
        // deletes its storage or recycles its id: a reader holding a stale path (its
        // root-to-leaf snapshot predates this epoch) would otherwise validate a page
        // that is about to vanish or be reborn as a different node.
        for &id in &freed {
            self.tree.versions.bump(id);
        }
        freed
    }
}

fn missing_page(page: u64) -> Error {
    Error::InvalidConfig(format!("btree references missing page {page}"))
}

/// The smallest byte string strictly greater than `k` (the scan cursor just past an
/// emitted key).
fn successor(k: &[u8]) -> Vec<u8> {
    let mut s = Vec::with_capacity(k.len() + 1);
    s.extend_from_slice(k);
    s.push(0);
    s
}

/// Index of the child to descend into for `key` given the separator keys.
fn child_index(keys: &[Vec<u8>], key: &[u8]) -> usize {
    match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
        Ok(i) => i + 1, // equal to separator => right subtree (separator is its smallest key)
        Err(i) => i,
    }
}

/// Where to split a leaf's entries so both halves fit comfortably: the first index where
/// the accumulated encoded size exceeds half the page.
fn split_point(entries: &[(Vec<u8>, Vec<u8>)], page_size: usize) -> usize {
    let mut acc = LEAF_HEADER_BYTES;
    for (i, (k, v)) in entries.iter().enumerate() {
        acc += 4 + k.len() + v.len();
        if acc > page_size / 2 && i + 1 < entries.len() {
            return (i + 1).max(1);
        }
    }
    (entries.len() / 2).max(1)
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_store::{LssPageStore, MemPageStore};
    use lss_core::{policy::PolicyKind, LogStore, StoreConfig};
    use std::collections::BTreeMap;

    const PAGE: usize = 256;

    fn new_tree() -> BTree<MemPageStore> {
        BTree::open(BufferPool::new(MemPageStore::new(PAGE), 64)).unwrap()
    }

    fn new_shadow_tree() -> BTree<MemPageStore> {
        BTree::open_shadow(BufferPool::new(MemPageStore::new(PAGE), 64), None).unwrap()
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let t = new_tree();
        assert!(t.is_empty());
        t.insert(b"b", b"2").unwrap();
        t.insert(b"a", b"1").unwrap();
        t.insert(b"c", b"3").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(t.get(b"b").unwrap().unwrap(), b"2");
        assert!(t.get(b"zzz").unwrap().is_none());
        assert!(t.delete(b"b").unwrap());
        assert!(!t.delete(b"b").unwrap());
        assert!(t.get(b"b").unwrap().is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overwrite_updates_in_place_and_returns_old_value() {
        let t = new_tree();
        assert_eq!(t.insert_returning(b"k", b"v1").unwrap(), None);
        assert_eq!(
            t.insert_returning(b"k", b"v2-longer").unwrap(),
            Some(b"v1".to_vec())
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"k").unwrap().unwrap(), b"v2-longer");
        assert_eq!(
            t.delete_returning(b"k").unwrap(),
            Some(b"v2-longer".to_vec())
        );
    }

    #[test]
    fn many_inserts_force_multi_level_splits_and_stay_sorted() {
        for tree in [new_tree(), new_shadow_tree()] {
            let n = 5_000u32;
            // Insert in a scrambled order (a fixed odd multiplier coprime with n makes
            // this a permutation) to exercise splits at arbitrary positions.
            for i in 0..n {
                let k = ((i as u64 * 2654435761) % n as u64) as u32;
                tree.insert(&key(k), format!("value-{k}").as_bytes())
                    .unwrap();
            }
            assert_eq!(tree.len() as u32, n);
            for i in (0..n).step_by(97) {
                assert_eq!(
                    tree.get(&key(i)).unwrap().unwrap(),
                    format!("value-{i}").as_bytes(),
                    "key {i} lost"
                );
            }
            // The full range scan returns every key in sorted order.
            let all = tree.range(b"key-", b"key-99999999~").unwrap();
            assert_eq!(all.len() as u32, n);
            assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan not sorted");
        }
    }

    #[test]
    fn range_scan_is_half_open_and_ordered() {
        let t = new_tree();
        for i in 0..100u32 {
            t.insert(&key(i), b"x").unwrap();
        }
        let out = t.range(&key(10), &key(20)).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].0, key(10));
        assert_eq!(out[9].0, key(19));
    }

    #[test]
    fn matches_a_model_under_random_operations() {
        for tree in [new_tree(), new_shadow_tree()] {
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            let mut state = 0x12345678u64;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for _ in 0..3_000 {
                let k = key((next() % 300) as u32);
                match next() % 3 {
                    0 | 1 => {
                        let v = format!("v{}", next() % 1000).into_bytes();
                        tree.insert(&k, &v).unwrap();
                        model.insert(k, v);
                    }
                    _ => {
                        let expected = model.remove(&k).is_some();
                        assert_eq!(tree.delete(&k).unwrap(), expected);
                    }
                }
            }
            assert_eq!(tree.len() as usize, model.len());
            for (k, v) in &model {
                assert_eq!(tree.get(k).unwrap().as_deref(), Some(v.as_slice()));
            }
            // Range over everything matches the model's order.
            let scanned = tree.range(b"", b"~~~~~~~~~~~~~~~~").unwrap();
            let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            assert_eq!(scanned, expected);
        }
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let t = new_tree();
        let err = t.insert(b"k", &vec![0u8; PAGE]).unwrap_err();
        assert!(matches!(err, Error::PageTooLarge { .. }));
    }

    #[test]
    fn concurrent_readers_see_consistent_values() {
        let t = std::sync::Arc::new(new_tree());
        for i in 0..2_000u32 {
            t.insert(&key(i), format!("value-{i}").as_bytes()).unwrap();
        }
        std::thread::scope(|scope| {
            for w in 0..2u32 {
                let t = t.clone();
                scope.spawn(move || {
                    // Writers rewrite canonical contents (so readers can assert).
                    for round in 0..1_000u32 {
                        let i = (w * 977 + round * 13) % 2_000;
                        t.insert(&key(i), format!("value-{i}").as_bytes()).unwrap();
                    }
                });
            }
            for r in 0..3u32 {
                let t = t.clone();
                scope.spawn(move || {
                    for round in 0..2_000u32 {
                        let i = (r * 331 + round * 7) % 2_000;
                        let got = t.get(&key(i)).unwrap().expect("key must exist");
                        assert_eq!(got, format!("value-{i}").as_bytes());
                    }
                });
            }
        });
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn shadow_mode_never_overwrites_committed_pages_and_recycles_after_commit() {
        let tree = new_shadow_tree();
        for i in 0..200u32 {
            tree.insert(&key(i), b"epoch-0").unwrap();
        }
        // Commit epoch 1.
        let (root1, next1) = {
            let mut ck = tree.begin_checkpoint();
            ck.write_back().unwrap();
            let (r, n) = (ck.root(), ck.next_page_id());
            let freed = ck.commit();
            // A fresh tree frees nothing on its first commit.
            assert!(freed.is_empty());
            (r, n)
        };
        // Snapshot the committed pages straight from the store.
        let committed: Vec<(u64, Vec<u8>)> = (0..next1)
            .filter_map(|id| tree.store().read_page(id).unwrap().map(|d| (id, d)))
            .collect();
        assert!(committed.iter().any(|(id, _)| *id == root1));

        // Epoch 2 modifies heavily but does NOT write back: every committed page image
        // in the store must be byte-identical (copy-on-write, no in-place overwrite).
        for i in 0..200u32 {
            tree.insert(&key(i), b"epoch-1").unwrap();
        }
        tree.delete(&key(7)).unwrap();
        for (id, data) in &committed {
            assert_eq!(
                tree.store().read_page(*id).unwrap().as_deref(),
                Some(data.as_slice()),
                "committed page {id} overwritten before commit"
            );
        }

        // Committing epoch 2 frees superseded pages; once handed back, they recycle.
        let freed = {
            let mut ck = tree.begin_checkpoint();
            ck.write_back().unwrap();
            ck.commit()
        };
        assert!(!freed.is_empty(), "epoch 2 must supersede committed pages");
        tree.seed_free_list(freed);
        let watermark_before = {
            let ck = tree.begin_checkpoint();
            ck.next_page_id()
        };
        for i in 200..260u32 {
            tree.insert(&key(i), b"epoch-2").unwrap();
        }
        let watermark_after = {
            let ck = tree.begin_checkpoint();
            ck.next_page_id()
        };
        assert!(
            (watermark_after - watermark_before) < 60,
            "freed ids were not recycled (watermark grew by {})",
            watermark_after - watermark_before
        );
    }

    #[test]
    fn shadow_reopen_from_frontier_sees_committed_state_only() {
        let store = std::sync::Arc::new(MemPageStore::new(PAGE));

        /// Shares one `MemPageStore` across two "incarnations" of a tree.
        struct SharedStore(std::sync::Arc<MemPageStore>);
        impl PageStore for SharedStore {
            fn page_size(&self) -> usize {
                self.0.page_size()
            }
            fn read_page(&self, id: u64) -> Result<Option<Vec<u8>>> {
                self.0.read_page(id)
            }
            fn write_page(&self, id: u64, data: &[u8]) -> Result<()> {
                self.0.write_page(id, data)
            }
        }

        let tree =
            BTree::open_shadow(BufferPool::new(SharedStore(store.clone()), 64), None).unwrap();
        for i in 0..150u32 {
            tree.insert(&key(i), format!("v-{i}").as_bytes()).unwrap();
        }
        let (root, next, len) = {
            let mut ck = tree.begin_checkpoint();
            ck.write_back().unwrap();
            let frontier = (ck.root(), ck.next_page_id(), ck.len());
            ck.commit();
            frontier
        };
        // Uncommitted epoch on top: must be invisible to the frontier reopen.
        for i in 0..150u32 {
            tree.insert(&key(i), b"uncommitted").unwrap();
        }
        drop(tree);

        let reopened = BTree::open_shadow(
            BufferPool::new(SharedStore(store), 64),
            Some((root, next, len)),
        )
        .unwrap();
        assert_eq!(reopened.len(), 150);
        for i in (0..150u32).step_by(13) {
            assert_eq!(
                reopened.get(&key(i)).unwrap().unwrap(),
                format!("v-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn walk_visits_every_reachable_node_exactly_once() {
        let t = new_tree();
        for i in 0..1_000u32 {
            t.insert(&key(i), b"x").unwrap();
        }
        let mut ids = Vec::new();
        let mut leaves = 0u64;
        t.walk(|id, node| {
            ids.push(id);
            if node.is_leaf() {
                leaves += 1;
            }
        })
        .unwrap();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "a node was visited twice");
        assert!(leaves > 1, "1000 keys cannot fit one leaf");
    }

    #[test]
    fn stats_track_writer_crabbing_and_fallbacks() {
        let t = new_tree();
        for i in 0..500u32 {
            t.insert(&key(i), b"x").unwrap();
        }
        t.get(&key(3)).unwrap();
        let s = t.stats();
        assert_eq!(s.writer_ops, 500);
        assert!(
            s.writer_locks >= 500,
            "every mutation locks at least the leaf"
        );
        assert!(s.avg_crab_depth() >= 1.0);
        // Uncontended single-threaded use never needs the quiesced fallback.
        assert_eq!(s.read_fallbacks, 0);
        assert_eq!(s.write_fallbacks, 0);
    }

    /// A store whose page writes fail while `fail` is set; reads always succeed.
    struct FailingStore {
        inner: MemPageStore,
        fail: std::sync::atomic::AtomicBool,
    }
    impl PageStore for FailingStore {
        fn page_size(&self) -> usize {
            self.inner.page_size()
        }
        fn read_page(&self, id: u64) -> Result<Option<Vec<u8>>> {
            self.inner.read_page(id)
        }
        fn write_page(&self, id: u64, data: &[u8]) -> Result<()> {
            if self.fail.load(Ordering::Relaxed) {
                return Err(Error::Io(std::io::Error::other("injected write failure")));
            }
            self.inner.write_page(id, data)
        }
    }

    /// A committed shadow tree over a [`FailingStore`] with a 2-frame pool: once
    /// `fail` is set, any mutation that relocates a root-to-leaf path (three
    /// writes minimum at 200 keys / 256-byte pages) must dirty-evict mid-apply
    /// and surface the injected error partway through its writes.
    fn committed_failing_shadow_tree() -> BTree<FailingStore> {
        let store = FailingStore {
            inner: MemPageStore::new(PAGE),
            fail: std::sync::atomic::AtomicBool::new(false),
        };
        let tree = BTree::open_shadow(BufferPool::new(store, 2), None).unwrap();
        for i in 0..200u32 {
            tree.insert(&key(i), b"seed").unwrap();
        }
        let mut ck = tree.begin_checkpoint();
        ck.write_back().unwrap();
        ck.commit();
        assert!(
            tree.alloc.lock().freed.is_empty(),
            "committed baseline must start with an empty freed queue"
        );
        tree
    }

    #[test]
    fn failed_apply_rolls_back_the_freed_queue() {
        let tree = committed_failing_shadow_tree();
        tree.store().fail.store(true, Ordering::Relaxed);
        assert!(
            tree.insert(&key(42), b"rewrite").is_err(),
            "a 2-frame pool must dirty-evict (and so fail) mid-apply"
        );
        // The regression: the committed pages this attempt queued for release
        // must not stay on `freed`, or the next checkpoint commit would delete
        // storage the committed tree still references.
        assert!(
            tree.alloc.lock().freed.is_empty(),
            "failed apply left committed pages on the freed queue"
        );
        tree.store().fail.store(false, Ordering::Relaxed);
        // The old root was never superseded: the failed mutation is invisible.
        assert_eq!(tree.get(&key(42)).unwrap().as_deref(), Some(&b"seed"[..]));
        // The tree is fully usable and the next commit releases only pages the
        // committed tree no longer references: scribbling over their storage —
        // the moral equivalent of the store deleting them — must break nothing.
        tree.insert(&key(42), b"after").unwrap();
        let mut ck = tree.begin_checkpoint();
        ck.write_back().unwrap();
        for id in ck.commit() {
            tree.store().inner.write_page(id, &[0xAA; PAGE]).unwrap();
        }
        assert_eq!(tree.get(&key(42)).unwrap().unwrap(), b"after");
        for i in (0..200u32).step_by(7) {
            if i != 42 {
                assert_eq!(tree.get(&key(i)).unwrap().as_deref(), Some(&b"seed"[..]));
            }
        }
    }

    #[test]
    fn failed_quiesced_mutations_roll_back_the_freed_queue() {
        let tree = committed_failing_shadow_tree();

        // Quiesced insert fails mid-recursion.
        tree.store().fail.store(true, Ordering::Relaxed);
        {
            let _quiesced = tree.epoch_latch.write();
            assert!(tree.insert_quiesced(&key(57), b"rewrite").is_err());
        }
        assert!(
            tree.alloc.lock().freed.is_empty(),
            "failed quiesced insert left committed pages on the freed queue"
        );
        tree.store().fail.store(false, Ordering::Relaxed);
        assert_eq!(tree.get(&key(57)).unwrap().as_deref(), Some(&b"seed"[..]));

        // Re-commit (clean pool, empty freed queue), then the delete path.
        let mut ck = tree.begin_checkpoint();
        ck.write_back().unwrap();
        ck.commit();
        tree.store().fail.store(true, Ordering::Relaxed);
        {
            let _quiesced = tree.epoch_latch.write();
            assert!(tree.delete_quiesced(&key(100)).is_err());
        }
        assert!(
            tree.alloc.lock().freed.is_empty(),
            "failed quiesced delete left committed pages on the freed queue"
        );
        tree.store().fail.store(false, Ordering::Relaxed);
        assert_eq!(tree.get(&key(100)).unwrap().as_deref(), Some(&b"seed"[..]));
        assert!(tree.delete(&key(100)).unwrap());
        assert_eq!(tree.len(), 199);
    }

    #[test]
    fn quiesced_splits_are_invisible_to_optimistic_readers() {
        // Regression for the write-then-bump race: a quiesced in-place split that
        // wrote the truncated left leaf before invalidating its version let an
        // optimistic reader validate post-write bytes against the pre-write
        // version and miss the keys moved to the right sibling. Every insert here
        // goes through the quiesced path directly while readers hammer the most
        // recently published keys — exactly the ones a leaf split moves.
        let t = std::sync::Arc::new(new_tree());
        let published = std::sync::Arc::new(AtomicU64::new(0));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for r in 0..2u64 {
                let t = t.clone();
                let published = published.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut round = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let n = published.load(Ordering::Acquire);
                        if n == 0 {
                            std::hint::spin_loop();
                            continue;
                        }
                        let i = n - 1 - ((round * 7 + r) % n.min(16));
                        assert!(
                            t.get(&key(i as u32)).unwrap().is_some(),
                            "published key {i} vanished mid-quiesced-split"
                        );
                        round += 1;
                    }
                });
            }
            for i in 0..3_000u32 {
                let _quiesced = t.epoch_latch.write();
                t.insert_quiesced(&key(i), b"v").unwrap();
                drop(_quiesced);
                published.store(u64::from(i) + 1, Ordering::Release);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(t.len(), 3_000);
    }

    #[test]
    fn scans_survive_perpetual_conflicts_via_the_per_leaf_fallback() {
        let t = new_tree();
        for i in 0..600u32 {
            t.insert(&key(i), b"x").unwrap();
        }
        // A pathological closure that invalidates every page version on each
        // call: all optimistic attempts conflict at leaf validation, so the scan
        // can only progress through the quiesced fallback — which must take one
        // leaf per exclusive hold (releasing the epoch latch in between) and
        // still visit every key exactly once, in order.
        let n_pages = t.alloc.lock().next_page_id;
        let out = t
            .scan_map(b"key-", b"key-99999999~", |k, _v| {
                for p in 0..n_pages {
                    t.versions.bump(p);
                }
                Ok(Some(k.to_vec()))
            })
            .unwrap();
        assert_eq!(out.len(), 600);
        assert!(out.windows(2).all(|w| w[0] < w[1]), "scan not sorted");
        assert_eq!(out, (0..600u32).map(key).collect::<Vec<_>>());
        let s = t.stats();
        assert!(
            s.read_restarts > 0,
            "every optimistic attempt must conflict"
        );
        assert!(
            s.read_fallbacks > 1,
            "each leaf must go through its own fallback, not one latch hold for the tail"
        );
    }

    #[test]
    fn persists_across_reopen_on_a_log_structured_store() {
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
        let store = LogStore::open_in_memory(config.clone()).unwrap();
        let pool = BufferPool::new(LssPageStore::new(store, config.page_bytes), 32);
        let tree = BTree::open(pool).unwrap();
        for i in 0..500u32 {
            tree.insert(&key(i), format!("value-{i}").as_bytes())
                .unwrap();
        }
        let lss = tree.into_store().unwrap().into_inner();

        // Simulate a restart: recover the log store from its device and reopen the tree.
        let device = lss.into_device();
        let recovered = LogStore::recover_with_device(config.clone(), device).unwrap();
        let pool = BufferPool::new(LssPageStore::new(recovered, config.page_bytes), 32);
        let tree2 = BTree::open(pool).unwrap();
        assert_eq!(tree2.len(), 500);
        for i in (0..500u32).step_by(37) {
            assert_eq!(
                tree2.get(&key(i)).unwrap().unwrap(),
                format!("value-{i}").as_bytes()
            );
        }
    }
}
