//! The B+-tree itself: ordered byte-string keys and values over fixed-size pages served
//! by a [`BufferPool`].
//!
//! Features: point lookups, inserts/updates with recursive node splits, deletes (without
//! rebalancing — pages may become underfull, which is harmless for the workloads here and
//! documented in DESIGN.md), and ordered range scans via leaf sibling links.

use crate::buffer_pool::BufferPool;
use crate::node::{MetaPage, Node};
use crate::page_store::PageStore;
use lss_core::error::{Error, Result};

/// Outcome of a recursive insert: whether a new key was added, plus the
/// `(separator, right page)` of a node split when one propagated upward.
type InsertOutcome = (bool, Option<(Vec<u8>, u64)>);

/// Page id of the metadata page.
const META_PAGE: u64 = 0;

/// An ordered key/value B+-tree over a page store.
#[derive(Debug)]
pub struct BTree<S: PageStore> {
    pool: BufferPool<S>,
    page_size: usize,
    meta: MetaPage,
    /// Number of live keys (maintained incrementally; informational).
    len: u64,
}

impl<S: PageStore> BTree<S> {
    /// Open (or initialise) a tree on a buffer pool. If the store already contains a
    /// tree (its meta page decodes), it is reused.
    pub fn open(mut pool: BufferPool<S>) -> Result<Self> {
        let page_size = pool.page_size();
        if page_size < 64 {
            return Err(Error::InvalidConfig(format!(
                "page size {page_size} too small for a B+-tree"
            )));
        }
        let meta = match pool.read(META_PAGE)? {
            Some(bytes) => MetaPage::decode(&bytes)?,
            None => {
                // Fresh store: page 1 becomes an empty root leaf.
                let meta = MetaPage {
                    root: 1,
                    next_page_id: 2,
                };
                let root = Node::empty_leaf().encode(page_size)?;
                pool.write(1, root)?;
                pool.write(META_PAGE, meta.encode(page_size))?;
                meta
            }
        };
        let mut tree = Self {
            pool,
            page_size,
            meta,
            len: 0,
        };
        tree.len = tree.count_keys()?;
        Ok(tree)
    }

    /// Largest key+value payload the tree accepts (a quarter page, so that any two
    /// entries always fit after a split).
    pub fn max_entry_size(&self) -> usize {
        self.page_size / 4
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buffer-pool statistics (hit ratio, evictions).
    pub fn pool_stats(&self) -> crate::buffer_pool::BufferPoolStats {
        self.pool.stats()
    }

    /// The underlying page store (without flushing; dirty pages may still be cached).
    pub fn store(&self) -> &S {
        self.pool.store()
    }

    /// Insert or overwrite a key.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if key.len() + value.len() > self.max_entry_size() {
            return Err(Error::PageTooLarge {
                page: 0,
                size: key.len() + value.len(),
                max: self.max_entry_size(),
            });
        }
        let root = self.meta.root;
        let (inserted_new, split) = self.insert_rec(root, key, value)?;
        if inserted_new {
            self.len += 1;
        }
        if let Some((sep, right)) = split {
            // The root split: create a new internal root.
            let new_root_id = self.allocate_page();
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![root, right],
            };
            self.write_node(new_root_id, &new_root)?;
            self.meta.root = new_root_id;
            self.write_meta()?;
        }
        Ok(())
    }

    /// Look up a key.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut page = self.meta.root;
        loop {
            match self.read_node(page)? {
                Node::Internal { keys, children } => {
                    page = children[child_index(&keys, key)];
                }
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .iter()
                        .find(|(k, _)| k.as_slice() == key)
                        .map(|(_, v)| v.clone()));
                }
            }
        }
    }

    /// Delete a key. Returns true if it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let mut page = self.meta.root;
        loop {
            match self.read_node(page)? {
                Node::Internal { keys, children } => {
                    page = children[child_index(&keys, key)];
                }
                Node::Leaf { next, mut entries } => {
                    let before = entries.len();
                    entries.retain(|(k, _)| k.as_slice() != key);
                    let removed = entries.len() < before;
                    if removed {
                        self.write_node(page, &Node::Leaf { next, entries })?;
                        self.len -= 1;
                    }
                    return Ok(removed);
                }
            }
        }
    }

    /// Ordered scan of all `(key, value)` pairs with `start <= key < end`.
    pub fn range(&mut self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        // Descend to the leaf that would contain `start`.
        let mut page = self.meta.root;
        while let Node::Internal { keys, children } = self.read_node(page)? {
            page = children[child_index(&keys, start)];
        }
        // Walk the leaf chain.
        loop {
            let Node::Leaf { next, entries } = self.read_node(page)? else {
                return Err(Error::InvalidConfig(
                    "leaf chain reached an internal node".into(),
                ));
            };
            for (k, v) in entries {
                if k.as_slice() >= end {
                    return Ok(out);
                }
                if k.as_slice() >= start {
                    out.push((k, v));
                }
            }
            if next == 0 {
                return Ok(out);
            }
            page = next;
        }
    }

    /// Flush all dirty pages (and the meta page) to the underlying store.
    pub fn flush(&mut self) -> Result<()> {
        self.write_meta()?;
        self.pool.flush_all()
    }

    /// Flush and return the underlying page store.
    pub fn into_store(mut self) -> Result<S> {
        self.flush()?;
        self.pool.into_store()
    }

    // ------------------------------------------------------------------

    fn allocate_page(&mut self) -> u64 {
        let id = self.meta.next_page_id;
        self.meta.next_page_id += 1;
        id
    }

    fn read_node(&mut self, page: u64) -> Result<Node> {
        let bytes = self
            .pool
            .read(page)?
            .ok_or_else(|| Error::InvalidConfig(format!("btree references missing page {page}")))?;
        Node::decode(&bytes)
    }

    fn write_node(&mut self, page: u64, node: &Node) -> Result<()> {
        self.pool.write(page, node.encode(self.page_size)?)
    }

    fn write_meta(&mut self) -> Result<()> {
        self.pool.write(META_PAGE, self.meta.encode(self.page_size))
    }

    /// Recursive insert. Returns (inserted_new_key, optional split (separator, right page)).
    fn insert_rec(&mut self, page: u64, key: &[u8], value: &[u8]) -> Result<InsertOutcome> {
        match self.read_node(page)? {
            Node::Leaf { next, mut entries } => {
                let inserted_new = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        entries[i].1 = value.to_vec();
                        false
                    }
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        true
                    }
                };
                let node = Node::Leaf { next, entries };
                if node.encoded_size() <= self.page_size {
                    self.write_node(page, &node)?;
                    return Ok((inserted_new, None));
                }
                // Split the leaf: move the upper half to a new page.
                let Node::Leaf { next, entries } = node else {
                    unreachable!()
                };
                let split_at = split_point(&entries, self.page_size);
                let right_entries = entries[split_at..].to_vec();
                let left_entries = entries[..split_at].to_vec();
                let sep = right_entries[0].0.clone();
                let right_page = self.allocate_page();
                self.write_node(
                    right_page,
                    &Node::Leaf {
                        next,
                        entries: right_entries,
                    },
                )?;
                self.write_node(
                    page,
                    &Node::Leaf {
                        next: right_page,
                        entries: left_entries,
                    },
                )?;
                self.write_meta()?;
                Ok((inserted_new, Some((sep, right_page))))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = child_index(&keys, key);
                let (inserted_new, split) = self.insert_rec(children[idx], key, value)?;
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    let node = Node::Internal { keys, children };
                    if node.encoded_size() <= self.page_size {
                        self.write_node(page, &node)?;
                        return Ok((inserted_new, None));
                    }
                    // Split the internal node: the middle key moves up.
                    let Node::Internal { keys, children } = node else {
                        unreachable!()
                    };
                    let mid = keys.len() / 2;
                    let up_key = keys[mid].clone();
                    let right_keys = keys[mid + 1..].to_vec();
                    let right_children = children[mid + 1..].to_vec();
                    let left_keys = keys[..mid].to_vec();
                    let left_children = children[..mid + 1].to_vec();
                    let right_page = self.allocate_page();
                    self.write_node(
                        right_page,
                        &Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    )?;
                    self.write_node(
                        page,
                        &Node::Internal {
                            keys: left_keys,
                            children: left_children,
                        },
                    )?;
                    self.write_meta()?;
                    return Ok((inserted_new, Some((up_key, right_page))));
                }
                Ok((inserted_new, None))
            }
        }
    }

    fn count_keys(&mut self) -> Result<u64> {
        // Walk the leftmost spine to the first leaf, then the leaf chain.
        let mut page = self.meta.root;
        while let Node::Internal { children, .. } = self.read_node(page)? {
            page = children[0];
        }
        let mut count = 0u64;
        loop {
            let Node::Leaf { next, entries } = self.read_node(page)? else {
                return Err(Error::InvalidConfig(
                    "leaf chain reached an internal node".into(),
                ));
            };
            count += entries.len() as u64;
            if next == 0 {
                return Ok(count);
            }
            page = next;
        }
    }
}

/// Index of the child to descend into for `key` given the separator keys.
fn child_index(keys: &[Vec<u8>], key: &[u8]) -> usize {
    match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
        Ok(i) => i + 1, // equal to separator => right subtree (separator is its smallest key)
        Err(i) => i,
    }
}

/// Where to split a leaf's entries so both halves fit comfortably: the first index where
/// the accumulated encoded size exceeds half the page.
fn split_point(entries: &[(Vec<u8>, Vec<u8>)], page_size: usize) -> usize {
    let mut acc = 11usize; // leaf header
    for (i, (k, v)) in entries.iter().enumerate() {
        acc += 4 + k.len() + v.len();
        if acc > page_size / 2 && i + 1 < entries.len() {
            return (i + 1).max(1);
        }
    }
    (entries.len() / 2).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_store::{LssPageStore, MemPageStore};
    use lss_core::{policy::PolicyKind, LogStore, StoreConfig};
    use std::collections::BTreeMap;

    const PAGE: usize = 256;

    fn new_tree() -> BTree<MemPageStore> {
        BTree::open(BufferPool::new(MemPageStore::new(PAGE), 64)).unwrap()
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let mut t = new_tree();
        assert!(t.is_empty());
        t.insert(b"b", b"2").unwrap();
        t.insert(b"a", b"1").unwrap();
        t.insert(b"c", b"3").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(t.get(b"b").unwrap().unwrap(), b"2");
        assert!(t.get(b"zzz").unwrap().is_none());
        assert!(t.delete(b"b").unwrap());
        assert!(!t.delete(b"b").unwrap());
        assert!(t.get(b"b").unwrap().is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overwrite_updates_in_place() {
        let mut t = new_tree();
        t.insert(b"k", b"v1").unwrap();
        t.insert(b"k", b"v2-longer").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"k").unwrap().unwrap(), b"v2-longer");
    }

    #[test]
    fn many_inserts_force_multi_level_splits_and_stay_sorted() {
        let mut t = new_tree();
        let n = 5_000u32;
        // Insert in a scrambled order (a fixed odd multiplier coprime with n makes this a
        // permutation) to exercise splits at arbitrary positions.
        for i in 0..n {
            let k = ((i as u64 * 2654435761) % n as u64) as u32;
            t.insert(&key(k), format!("value-{k}").as_bytes()).unwrap();
        }
        assert_eq!(t.len() as u32, n);
        for i in (0..n).step_by(97) {
            assert_eq!(
                t.get(&key(i)).unwrap().unwrap(),
                format!("value-{i}").as_bytes(),
                "key {i} lost"
            );
        }
        // The full range scan returns every key in sorted order.
        let all = t.range(b"key-", b"key-99999999~").unwrap();
        assert_eq!(all.len() as u32, n);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan not sorted");
    }

    #[test]
    fn range_scan_is_half_open_and_ordered() {
        let mut t = new_tree();
        for i in 0..100u32 {
            t.insert(&key(i), b"x").unwrap();
        }
        let out = t.range(&key(10), &key(20)).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].0, key(10));
        assert_eq!(out[9].0, key(19));
    }

    #[test]
    fn matches_a_model_under_random_operations() {
        let mut t = new_tree();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..3_000 {
            let k = key((next() % 300) as u32);
            match next() % 3 {
                0 | 1 => {
                    let v = format!("v{}", next() % 1000).into_bytes();
                    t.insert(&k, &v).unwrap();
                    model.insert(k, v);
                }
                _ => {
                    let expected = model.remove(&k).is_some();
                    assert_eq!(t.delete(&k).unwrap(), expected);
                }
            }
        }
        assert_eq!(t.len() as usize, model.len());
        for (k, v) in &model {
            assert_eq!(t.get(k).unwrap().as_deref(), Some(v.as_slice()));
        }
        // Range over everything matches the model's order.
        let scanned = t.range(b"", b"~~~~~~~~~~~~~~~~").unwrap();
        let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(scanned, expected);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut t = new_tree();
        let err = t.insert(b"k", &vec![0u8; PAGE]).unwrap_err();
        assert!(matches!(err, Error::PageTooLarge { .. }));
    }

    #[test]
    fn persists_across_reopen_on_a_log_structured_store() {
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
        let store = LogStore::open_in_memory(config.clone()).unwrap();
        let pool = BufferPool::new(LssPageStore::new(store, config.page_bytes), 32);
        let mut tree = BTree::open(pool).unwrap();
        for i in 0..500u32 {
            tree.insert(&key(i), format!("value-{i}").as_bytes())
                .unwrap();
        }
        let lss = tree.into_store().unwrap().into_inner();

        // Simulate a restart: recover the log store from its device and reopen the tree.
        let device = lss.into_device();
        let recovered = LogStore::recover_with_device(config.clone(), device).unwrap();
        let pool = BufferPool::new(LssPageStore::new(recovered, config.page_bytes), 32);
        let mut tree2 = BTree::open(pool).unwrap();
        assert_eq!(tree2.len(), 500);
        for i in (0..500u32).step_by(37) {
            assert_eq!(
                tree2.get(&key(i)).unwrap().unwrap(),
                format!("value-{i}").as_bytes()
            );
        }
    }
}
