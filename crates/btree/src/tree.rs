//! The B+-tree itself: ordered byte-string keys and values over fixed-size pages served
//! by a [`BufferPool`] — internally synchronised, so a shared tree serves concurrent
//! readers and writers through `&self`.
//!
//! Features: point lookups, inserts/updates with recursive node splits, deletes (without
//! rebalancing — pages may become underfull, which is harmless for the workloads here),
//! and ordered range scans. Scans walk the tree by **successor descent** rather than
//! leaf sibling links: the descent to a leaf remembers the smallest separator to the
//! right of its path, which is exactly the first key of the next leaf — so no persistent
//! `next` pointers are needed. That matters for shadow mode (below): with on-page links,
//! relocating one leaf would force rewriting its left neighbour, cascading through the
//! whole chain.
//!
//! ## Concurrency
//!
//! One tree-level `RwLock` orders operations: lookups and scans share it, mutations and
//! checkpoints take it exclusively. Page frames live in the [`BufferPool`]'s sharded
//! latches underneath, so concurrent readers touch disjoint locks on the hot path. Lock
//! order: tree latch → pool shard latch (a leaf — the pool never takes the tree latch).
//!
//! ## Shadow (copy-on-write) mode
//!
//! A tree opened with [`BTree::open_shadow`] never overwrites a *committed* page: the
//! first time an epoch modifies a node, the node is relocated to a freshly allocated
//! page id and the old id is queued on a freed list (path copying — the parent is being
//! rewritten anyway to repoint at the relocated child, all the way to the root). Pages
//! allocated since the last commit are "fresh" and are updated in place. A
//! [`TreeCheckpoint`] then makes the epoch durable: write back the dirty pages (all of
//! them fresh ids), let the caller place a commit record (the KV layer's superblock)
//! pointing at the new root, and only then release the freed ids for reuse. Crash at
//! any point and the previously committed root still describes a fully intact tree.
//! Stand-alone trees ([`BTree::open`]) skip all of this and update pages in place,
//! which keeps the TPC-C page-write traces of the Figure 6 experiment faithful.

use crate::buffer_pool::BufferPool;
use crate::node::{MetaPage, Node, LEAF_HEADER_BYTES};
use crate::page_store::PageStore;
use lss_core::error::{Error, Result};
use parking_lot::{RwLock, RwLockWriteGuard};
use std::collections::HashSet;

/// Page id of the metadata page (stand-alone mode only; never allocated to nodes).
const META_PAGE: u64 = 0;

/// The latch-guarded mutable state of a tree.
#[derive(Debug)]
struct TreeState {
    /// Page id of the root node.
    root: u64,
    /// Next never-used page id (the allocation watermark).
    next_page_id: u64,
    /// Number of live keys.
    len: u64,
    /// Shadow mode: pages allocated since the last commit — safe to update in place.
    fresh: HashSet<u64>,
    /// Shadow mode: committed pages superseded this epoch; reusable after commit.
    freed: Vec<u64>,
    /// Shadow mode: page ids free for reuse (freed by previously committed epochs).
    free: Vec<u64>,
}

/// An ordered key/value B+-tree over a page store.
#[derive(Debug)]
pub struct BTree<S: PageStore> {
    pool: BufferPool<S>,
    page_size: usize,
    /// Copy-on-write mode (see the module docs).
    shadow: bool,
    state: RwLock<TreeState>,
}

impl<S: PageStore> BTree<S> {
    /// Open (or initialise) a stand-alone tree on a buffer pool: pages are updated in
    /// place and the tree's metadata lives in page 0, written by [`BTree::flush`]. If
    /// the store already contains a tree (its meta page decodes), it is reused.
    pub fn open(pool: BufferPool<S>) -> Result<Self> {
        let page_size = Self::check_page_size(&pool)?;
        let meta = match pool.read(META_PAGE)? {
            Some(bytes) => MetaPage::decode(&bytes)?,
            None => {
                // Fresh store: page 1 becomes an empty root leaf.
                let meta = MetaPage {
                    root: 1,
                    next_page_id: 2,
                    len: 0,
                };
                pool.write(1, Node::empty_leaf().encode(page_size)?)?;
                pool.write(META_PAGE, meta.encode(page_size))?;
                meta
            }
        };
        Ok(Self {
            pool,
            page_size,
            shadow: false,
            state: RwLock::new(TreeState {
                root: meta.root,
                next_page_id: meta.next_page_id,
                len: meta.len,
                fresh: HashSet::new(),
                freed: Vec::new(),
                free: Vec::new(),
            }),
        })
    }

    /// Open a tree in shadow (copy-on-write) mode.
    ///
    /// `frontier` is the last committed `(root, next_page_id, len)` — recorded by the
    /// caller's commit record (e.g. the KV superblock) — or `None` to initialise a
    /// fresh empty tree whose first pages materialise only at the first checkpoint.
    /// Shadow trees never touch page 0 and never overwrite a committed page; see the
    /// module docs for the epoch protocol.
    pub fn open_shadow(pool: BufferPool<S>, frontier: Option<(u64, u64, u64)>) -> Result<Self> {
        let page_size = Self::check_page_size(&pool)?;
        let (root, next_page_id, len, fresh) = match frontier {
            Some((root, next_page_id, len)) => {
                if root == META_PAGE || root >= next_page_id {
                    return Err(Error::CorruptCheckpoint(format!(
                        "btree frontier root {root} outside (0, {next_page_id})"
                    )));
                }
                (root, next_page_id, len, HashSet::new())
            }
            None => {
                // Fresh tree: root leaf at page 1, fresh (dirty in the pool only).
                pool.write(1, Node::empty_leaf().encode(page_size)?)?;
                (1, 2, 0, HashSet::from([1]))
            }
        };
        Ok(Self {
            pool,
            page_size,
            shadow: true,
            state: RwLock::new(TreeState {
                root,
                next_page_id,
                len,
                fresh,
                freed: Vec::new(),
                free: Vec::new(),
            }),
        })
    }

    fn check_page_size(pool: &BufferPool<S>) -> Result<usize> {
        let page_size = pool.page_size();
        if page_size < 64 {
            return Err(Error::InvalidConfig(format!(
                "page size {page_size} too small for a B+-tree"
            )));
        }
        Ok(page_size)
    }

    /// Largest key+value payload the tree accepts (a quarter page, so that any two
    /// entries always fit after a split).
    pub fn max_entry_size(&self) -> usize {
        self.page_size / 4
    }

    /// Number of keys in the tree.
    pub fn len(&self) -> u64 {
        self.state.read().len
    }

    /// True if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffer-pool statistics (hit ratio, evictions).
    pub fn pool_stats(&self) -> crate::buffer_pool::BufferPoolStats {
        self.pool.stats()
    }

    /// The buffer pool (e.g. for dirty-page gauges).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// The underlying page store (without flushing; dirty pages may still be cached).
    pub fn store(&self) -> &S {
        self.pool.store()
    }

    /// Seed the reusable-page-id list (shadow mode; used when reopening a tree whose
    /// free list was reconstructed by a reachability sweep).
    pub fn seed_free_list(&self, ids: impl IntoIterator<Item = u64>) {
        let mut st = self.state.write();
        st.free.extend(ids);
    }

    /// Insert or overwrite a key.
    pub fn insert(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.insert_returning(key, value).map(|_| ())
    }

    /// Insert or overwrite a key, returning the previous value if the key existed.
    pub fn insert_returning(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        if key.len() + value.len() > self.max_entry_size() {
            return Err(Error::PageTooLarge {
                page: 0,
                size: key.len() + value.len(),
                max: self.max_entry_size(),
            });
        }
        let mut st = self.state.write();
        let root = st.root;
        let (new_root, old, split) = self.insert_rec(&mut st, root, key, value)?;
        st.root = new_root;
        if old.is_none() {
            st.len += 1;
        }
        if let Some((sep, right)) = split {
            // The root split: create a new internal root.
            let new_root_id = self.alloc_page(&mut st);
            let new_root = Node::Internal {
                keys: vec![sep],
                children: vec![st.root, right],
            };
            self.write_node(new_root_id, &new_root)?;
            st.root = new_root_id;
        }
        Ok(old)
    }

    /// Look up a key.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_map(key, |v| Ok(v.to_vec()))
    }

    /// Look up a key and transform the value **under the tree's shared latch**: while
    /// `f` runs, no mutation or checkpoint can commit, so whatever the value references
    /// (e.g. a KV value page in the log store) cannot be reclaimed underneath it.
    pub fn get_map<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> Result<R>) -> Result<Option<R>> {
        let st = self.state.read();
        let mut page = st.root;
        loop {
            match self.read_node(page)? {
                Node::Internal { keys, children } => {
                    page = children[child_index(&keys, key)];
                }
                Node::Leaf { entries } => {
                    return match entries.iter().find(|(k, _)| k.as_slice() == key) {
                        Some((_, v)) => f(v).map(Some),
                        None => Ok(None),
                    };
                }
            }
        }
    }

    /// Delete a key. Returns true if it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        self.delete_returning(key).map(|old| old.is_some())
    }

    /// Delete a key, returning its value if it existed.
    pub fn delete_returning(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut st = self.state.write();
        // Read-only probe first: a miss must not churn shadow pages.
        let mut page = st.root;
        loop {
            match self.read_node(page)? {
                Node::Internal { keys, children } => page = children[child_index(&keys, key)],
                Node::Leaf { entries } => {
                    if !entries.iter().any(|(k, _)| k.as_slice() == key) {
                        return Ok(None);
                    }
                    break;
                }
            }
        }
        let root = st.root;
        let (new_root, old) = self.delete_rec(&mut st, root, key)?;
        st.root = new_root;
        st.len -= 1;
        Ok(old)
    }

    /// Ordered scan of all `(key, value)` pairs with `start <= key < end`.
    pub fn range(&self, start: &[u8], end: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_map(start, end, |k, v| Ok(Some((k.to_vec(), v.to_vec()))))
    }

    /// Ordered scan of `start <= key < end`, applying `f` to each entry **under the
    /// tree's shared latch** (see [`BTree::get_map`]); entries for which `f` returns
    /// `Ok(None)` are skipped.
    pub fn scan_map<R>(
        &self,
        start: &[u8],
        end: &[u8],
        mut f: impl FnMut(&[u8], &[u8]) -> Result<Option<R>>,
    ) -> Result<Vec<R>> {
        let st = self.state.read();
        let mut out = Vec::new();
        let mut cursor = start.to_vec();
        loop {
            let (entries, upper) = self.find_leaf(&st, &cursor)?;
            for (k, v) in &entries {
                if k.as_slice() >= end {
                    return Ok(out);
                }
                if k.as_slice() >= start {
                    if let Some(r) = f(k, v)? {
                        out.push(r);
                    }
                }
            }
            match upper {
                // Rightmost leaf: done.
                None => return Ok(out),
                Some(u) => {
                    if u.as_slice() >= end {
                        return Ok(out);
                    }
                    // `u` is the smallest key of the next leaf; descending for it
                    // lands exactly there.
                    cursor = u;
                }
            }
        }
    }

    /// Visit every reachable node (pre-order), e.g. for reachability sweeps after a
    /// restart. Runs under the shared latch.
    pub fn walk(&self, mut f: impl FnMut(u64, &Node)) -> Result<()> {
        let st = self.state.read();
        self.walk_rec(st.root, &mut f)
    }

    /// Flush all dirty pages (and, for stand-alone trees, the meta page) to the
    /// underlying store and sync it.
    ///
    /// Shadow trees get no crash-consistency guarantee from this alone — that is what
    /// [`BTree::begin_checkpoint`] and the caller's commit record are for.
    pub fn flush(&self) -> Result<()> {
        let st = self.state.write();
        if !self.shadow {
            let meta = MetaPage {
                root: st.root,
                next_page_id: st.next_page_id,
                len: st.len,
            };
            self.pool.write(META_PAGE, meta.encode(self.page_size))?;
        }
        self.pool.flush_all()
    }

    /// Flush and return the underlying page store.
    pub fn into_store(self) -> Result<S> {
        self.flush()?;
        self.pool.into_store()
    }

    /// Take the tree's exclusive latch for a checkpoint: no mutation can run until the
    /// returned guard is committed or dropped. See [`TreeCheckpoint`].
    pub fn begin_checkpoint(&self) -> TreeCheckpoint<'_, S> {
        TreeCheckpoint {
            tree: self,
            st: self.state.write(),
        }
    }

    // ------------------------------------------------------------------

    fn alloc_page(&self, st: &mut TreeState) -> u64 {
        let id = st.free.pop().unwrap_or_else(|| {
            let id = st.next_page_id;
            st.next_page_id += 1;
            id
        });
        if self.shadow {
            st.fresh.insert(id);
        }
        id
    }

    /// The page id a modification of `page` must be written to: the page itself when it
    /// may be updated in place (stand-alone mode, or fresh this epoch), otherwise a
    /// newly allocated shadow id, with `page` queued for post-commit release. The
    /// caller writes the modified node to the returned id and repoints the parent.
    fn shadow_id(&self, st: &mut TreeState, page: u64) -> u64 {
        if !self.shadow || st.fresh.contains(&page) {
            return page;
        }
        let id = self.alloc_page(st);
        st.freed.push(page);
        id
    }

    fn read_node(&self, page: u64) -> Result<Node> {
        let bytes = self
            .pool
            .read(page)?
            .ok_or_else(|| Error::InvalidConfig(format!("btree references missing page {page}")))?;
        Node::decode(&bytes)
    }

    fn write_node(&self, page: u64, node: &Node) -> Result<()> {
        self.pool.write(page, node.encode(self.page_size)?)
    }

    /// Descend to the leaf that would hold `key`, returning its entries together with
    /// the leaf's exclusive upper bound: the innermost separator to the right of the
    /// descent path (`None` on the rightmost spine). The upper bound is the smallest
    /// key of the *next* leaf, which is how scans walk leaves without sibling links.
    #[allow(clippy::type_complexity)]
    fn find_leaf(
        &self,
        st: &TreeState,
        key: &[u8],
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, Option<Vec<u8>>)> {
        let mut page = st.root;
        let mut upper: Option<Vec<u8>> = None;
        loop {
            match self.read_node(page)? {
                Node::Internal { keys, children } => {
                    let idx = child_index(&keys, key);
                    if idx < keys.len() {
                        // Deeper separators are tighter than inherited ones.
                        upper = Some(keys[idx].clone());
                    }
                    page = children[idx];
                }
                Node::Leaf { entries } => return Ok((entries, upper)),
            }
        }
    }

    fn walk_rec(&self, page: u64, f: &mut impl FnMut(u64, &Node)) -> Result<()> {
        let node = self.read_node(page)?;
        f(page, &node);
        if let Node::Internal { children, .. } = &node {
            for &c in children {
                self.walk_rec(c, f)?;
            }
        }
        Ok(())
    }

    /// Recursive insert. Returns the node's (possibly relocated) page id, the previous
    /// value of the key if it existed, and the `(separator, right page)` of a node
    /// split when one propagated upward.
    #[allow(clippy::type_complexity)]
    fn insert_rec(
        &self,
        st: &mut TreeState,
        page: u64,
        key: &[u8],
        value: &[u8],
    ) -> Result<(u64, Option<Vec<u8>>, Option<(Vec<u8>, u64)>)> {
        match self.read_node(page)? {
            Node::Leaf { mut entries } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value.to_vec())),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                let page = self.shadow_id(st, page);
                let node = Node::Leaf { entries };
                if node.encoded_size() <= self.page_size {
                    self.write_node(page, &node)?;
                    return Ok((page, old, None));
                }
                // Split the leaf: move the upper half to a new page.
                let Node::Leaf { entries } = node else {
                    unreachable!()
                };
                let split_at = split_point(&entries, self.page_size);
                let right_entries = entries[split_at..].to_vec();
                let left_entries = entries[..split_at].to_vec();
                let sep = right_entries[0].0.clone();
                let right_page = self.alloc_page(st);
                self.write_node(
                    right_page,
                    &Node::Leaf {
                        entries: right_entries,
                    },
                )?;
                self.write_node(
                    page,
                    &Node::Leaf {
                        entries: left_entries,
                    },
                )?;
                Ok((page, old, Some((sep, right_page))))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = child_index(&keys, key);
                let child = children[idx];
                let (new_child, old, split) = self.insert_rec(st, child, key, value)?;
                if new_child == child && split.is_none() {
                    // Nothing about this node changed (the child was updated in
                    // place): leave it untouched so in-place trees write only what
                    // they modify and shadow trees stop the path copy here.
                    return Ok((page, old, None));
                }
                children[idx] = new_child;
                let page = self.shadow_id(st, page);
                if let Some((sep, right)) = split {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    let node = Node::Internal { keys, children };
                    if node.encoded_size() > self.page_size {
                        // Split the internal node: the middle key moves up.
                        let Node::Internal { keys, children } = node else {
                            unreachable!()
                        };
                        let mid = keys.len() / 2;
                        let up_key = keys[mid].clone();
                        let right_keys = keys[mid + 1..].to_vec();
                        let right_children = children[mid + 1..].to_vec();
                        let left_keys = keys[..mid].to_vec();
                        let left_children = children[..mid + 1].to_vec();
                        let right_page = self.alloc_page(st);
                        self.write_node(
                            right_page,
                            &Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        )?;
                        self.write_node(
                            page,
                            &Node::Internal {
                                keys: left_keys,
                                children: left_children,
                            },
                        )?;
                        return Ok((page, old, Some((up_key, right_page))));
                    }
                    self.write_node(page, &node)?;
                    return Ok((page, old, None));
                }
                self.write_node(page, &Node::Internal { keys, children })?;
                Ok((page, old, None))
            }
        }
    }

    /// Recursive delete of a key known to exist. Returns the node's (possibly
    /// relocated) page id and the removed value.
    fn delete_rec(
        &self,
        st: &mut TreeState,
        page: u64,
        key: &[u8],
    ) -> Result<(u64, Option<Vec<u8>>)> {
        match self.read_node(page)? {
            Node::Leaf { mut entries } => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(entries.remove(i).1),
                    Err(_) => None,
                };
                if old.is_none() {
                    return Ok((page, None));
                }
                let page = self.shadow_id(st, page);
                self.write_node(page, &Node::Leaf { entries })?;
                Ok((page, old))
            }
            Node::Internal { keys, mut children } => {
                let idx = child_index(&keys, key);
                let child = children[idx];
                let (new_child, old) = self.delete_rec(st, child, key)?;
                if new_child == child {
                    return Ok((page, old));
                }
                children[idx] = new_child;
                let page = self.shadow_id(st, page);
                self.write_node(page, &Node::Internal { keys, children })?;
                Ok((page, old))
            }
        }
    }
}

/// An in-progress checkpoint of a shadow-mode tree: holds the tree's exclusive latch so
/// the epoch's page set is frozen while the caller runs its commit protocol.
///
/// Intended sequence (the KV layer's two-barrier superblock flip):
///
/// 1. [`TreeCheckpoint::write_back`] — dirty pages (all fresh ids) reach the store;
/// 2. caller makes them durable (barrier 1), then durably commits a record pointing at
///    [`TreeCheckpoint::root`] / [`TreeCheckpoint::next_page_id`] (barrier 2);
/// 3. [`TreeCheckpoint::commit`] — the epoch's freed page ids become reusable and are
///    returned so the caller can release their storage.
///
/// Dropping the guard without committing aborts the epoch bookkeeping-wise: freed pages
/// stay unreleased and the next checkpoint retries, which is exactly right when a
/// barrier fails — the previously committed root is still fully intact.
pub struct TreeCheckpoint<'a, S: PageStore> {
    tree: &'a BTree<S>,
    st: RwLockWriteGuard<'a, TreeState>,
}

impl<S: PageStore> TreeCheckpoint<'_, S> {
    /// Write all dirty pages back to the store in ascending page-id order (no sync).
    /// Returns the page ids written.
    pub fn write_back(&mut self) -> Result<Vec<u64>> {
        self.tree.pool.write_back()
    }

    /// The root page id this checkpoint would commit.
    pub fn root(&self) -> u64 {
        self.st.root
    }

    /// The allocation watermark this checkpoint would commit.
    pub fn next_page_id(&self) -> u64 {
        self.st.next_page_id
    }

    /// The key count this checkpoint would commit.
    pub fn len(&self) -> u64 {
        self.st.len
    }

    /// True if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.st.len == 0
    }

    /// Seal the epoch after the caller's commit record is durable: fresh pages become
    /// committed. Returns the epoch's freed page ids — no longer referenced by the
    /// committed tree — **without recycling them**: the caller releases their storage
    /// first and only then hands them back via [`BTree::seed_free_list`]. Recycling
    /// before the release is a race: a new page could be allocated at the id and then
    /// clobbered by the in-flight release of its previous incarnation.
    pub fn commit(mut self) -> Vec<u64> {
        self.st.fresh.clear();
        std::mem::take(&mut self.st.freed)
    }
}

/// Index of the child to descend into for `key` given the separator keys.
fn child_index(keys: &[Vec<u8>], key: &[u8]) -> usize {
    match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
        Ok(i) => i + 1, // equal to separator => right subtree (separator is its smallest key)
        Err(i) => i,
    }
}

/// Where to split a leaf's entries so both halves fit comfortably: the first index where
/// the accumulated encoded size exceeds half the page.
fn split_point(entries: &[(Vec<u8>, Vec<u8>)], page_size: usize) -> usize {
    let mut acc = LEAF_HEADER_BYTES;
    for (i, (k, v)) in entries.iter().enumerate() {
        acc += 4 + k.len() + v.len();
        if acc > page_size / 2 && i + 1 < entries.len() {
            return (i + 1).max(1);
        }
    }
    (entries.len() / 2).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_store::{LssPageStore, MemPageStore};
    use lss_core::{policy::PolicyKind, LogStore, StoreConfig};
    use std::collections::BTreeMap;

    const PAGE: usize = 256;

    fn new_tree() -> BTree<MemPageStore> {
        BTree::open(BufferPool::new(MemPageStore::new(PAGE), 64)).unwrap()
    }

    fn new_shadow_tree() -> BTree<MemPageStore> {
        BTree::open_shadow(BufferPool::new(MemPageStore::new(PAGE), 64), None).unwrap()
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let t = new_tree();
        assert!(t.is_empty());
        t.insert(b"b", b"2").unwrap();
        t.insert(b"a", b"1").unwrap();
        t.insert(b"c", b"3").unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(b"a").unwrap().unwrap(), b"1");
        assert_eq!(t.get(b"b").unwrap().unwrap(), b"2");
        assert!(t.get(b"zzz").unwrap().is_none());
        assert!(t.delete(b"b").unwrap());
        assert!(!t.delete(b"b").unwrap());
        assert!(t.get(b"b").unwrap().is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn overwrite_updates_in_place_and_returns_old_value() {
        let t = new_tree();
        assert_eq!(t.insert_returning(b"k", b"v1").unwrap(), None);
        assert_eq!(
            t.insert_returning(b"k", b"v2-longer").unwrap(),
            Some(b"v1".to_vec())
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"k").unwrap().unwrap(), b"v2-longer");
        assert_eq!(
            t.delete_returning(b"k").unwrap(),
            Some(b"v2-longer".to_vec())
        );
    }

    #[test]
    fn many_inserts_force_multi_level_splits_and_stay_sorted() {
        for tree in [new_tree(), new_shadow_tree()] {
            let n = 5_000u32;
            // Insert in a scrambled order (a fixed odd multiplier coprime with n makes
            // this a permutation) to exercise splits at arbitrary positions.
            for i in 0..n {
                let k = ((i as u64 * 2654435761) % n as u64) as u32;
                tree.insert(&key(k), format!("value-{k}").as_bytes())
                    .unwrap();
            }
            assert_eq!(tree.len() as u32, n);
            for i in (0..n).step_by(97) {
                assert_eq!(
                    tree.get(&key(i)).unwrap().unwrap(),
                    format!("value-{i}").as_bytes(),
                    "key {i} lost"
                );
            }
            // The full range scan returns every key in sorted order.
            let all = tree.range(b"key-", b"key-99999999~").unwrap();
            assert_eq!(all.len() as u32, n);
            assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan not sorted");
        }
    }

    #[test]
    fn range_scan_is_half_open_and_ordered() {
        let t = new_tree();
        for i in 0..100u32 {
            t.insert(&key(i), b"x").unwrap();
        }
        let out = t.range(&key(10), &key(20)).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].0, key(10));
        assert_eq!(out[9].0, key(19));
    }

    #[test]
    fn matches_a_model_under_random_operations() {
        for tree in [new_tree(), new_shadow_tree()] {
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            let mut state = 0x12345678u64;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for _ in 0..3_000 {
                let k = key((next() % 300) as u32);
                match next() % 3 {
                    0 | 1 => {
                        let v = format!("v{}", next() % 1000).into_bytes();
                        tree.insert(&k, &v).unwrap();
                        model.insert(k, v);
                    }
                    _ => {
                        let expected = model.remove(&k).is_some();
                        assert_eq!(tree.delete(&k).unwrap(), expected);
                    }
                }
            }
            assert_eq!(tree.len() as usize, model.len());
            for (k, v) in &model {
                assert_eq!(tree.get(k).unwrap().as_deref(), Some(v.as_slice()));
            }
            // Range over everything matches the model's order.
            let scanned = tree.range(b"", b"~~~~~~~~~~~~~~~~").unwrap();
            let expected: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            assert_eq!(scanned, expected);
        }
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let t = new_tree();
        let err = t.insert(b"k", &vec![0u8; PAGE]).unwrap_err();
        assert!(matches!(err, Error::PageTooLarge { .. }));
    }

    #[test]
    fn concurrent_readers_see_consistent_values() {
        let t = std::sync::Arc::new(new_tree());
        for i in 0..2_000u32 {
            t.insert(&key(i), format!("value-{i}").as_bytes()).unwrap();
        }
        std::thread::scope(|scope| {
            for w in 0..2u32 {
                let t = t.clone();
                scope.spawn(move || {
                    // Writers rewrite canonical contents (so readers can assert).
                    for round in 0..1_000u32 {
                        let i = (w * 977 + round * 13) % 2_000;
                        t.insert(&key(i), format!("value-{i}").as_bytes()).unwrap();
                    }
                });
            }
            for r in 0..3u32 {
                let t = t.clone();
                scope.spawn(move || {
                    for round in 0..2_000u32 {
                        let i = (r * 331 + round * 7) % 2_000;
                        let got = t.get(&key(i)).unwrap().expect("key must exist");
                        assert_eq!(got, format!("value-{i}").as_bytes());
                    }
                });
            }
        });
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn shadow_mode_never_overwrites_committed_pages_and_recycles_after_commit() {
        let tree = new_shadow_tree();
        for i in 0..200u32 {
            tree.insert(&key(i), b"epoch-0").unwrap();
        }
        // Commit epoch 1.
        let (root1, next1) = {
            let mut ck = tree.begin_checkpoint();
            ck.write_back().unwrap();
            let (r, n) = (ck.root(), ck.next_page_id());
            let freed = ck.commit();
            // A fresh tree frees nothing on its first commit.
            assert!(freed.is_empty());
            (r, n)
        };
        // Snapshot the committed pages straight from the store.
        let committed: Vec<(u64, Vec<u8>)> = (0..next1)
            .filter_map(|id| tree.store().read_page(id).unwrap().map(|d| (id, d)))
            .collect();
        assert!(committed.iter().any(|(id, _)| *id == root1));

        // Epoch 2 modifies heavily but does NOT write back: every committed page image
        // in the store must be byte-identical (copy-on-write, no in-place overwrite).
        for i in 0..200u32 {
            tree.insert(&key(i), b"epoch-1").unwrap();
        }
        tree.delete(&key(7)).unwrap();
        for (id, data) in &committed {
            assert_eq!(
                tree.store().read_page(*id).unwrap().as_deref(),
                Some(data.as_slice()),
                "committed page {id} overwritten before commit"
            );
        }

        // Committing epoch 2 frees superseded pages; once handed back, they recycle.
        let freed = {
            let mut ck = tree.begin_checkpoint();
            ck.write_back().unwrap();
            ck.commit()
        };
        assert!(!freed.is_empty(), "epoch 2 must supersede committed pages");
        tree.seed_free_list(freed);
        let watermark_before = {
            let ck = tree.begin_checkpoint();
            ck.next_page_id()
        };
        for i in 200..260u32 {
            tree.insert(&key(i), b"epoch-2").unwrap();
        }
        let watermark_after = {
            let ck = tree.begin_checkpoint();
            ck.next_page_id()
        };
        assert!(
            (watermark_after - watermark_before) < 60,
            "freed ids were not recycled (watermark grew by {})",
            watermark_after - watermark_before
        );
    }

    #[test]
    fn shadow_reopen_from_frontier_sees_committed_state_only() {
        let store = std::sync::Arc::new(MemPageStore::new(PAGE));

        /// Shares one `MemPageStore` across two "incarnations" of a tree.
        struct SharedStore(std::sync::Arc<MemPageStore>);
        impl PageStore for SharedStore {
            fn page_size(&self) -> usize {
                self.0.page_size()
            }
            fn read_page(&self, id: u64) -> Result<Option<Vec<u8>>> {
                self.0.read_page(id)
            }
            fn write_page(&self, id: u64, data: &[u8]) -> Result<()> {
                self.0.write_page(id, data)
            }
        }

        let tree =
            BTree::open_shadow(BufferPool::new(SharedStore(store.clone()), 64), None).unwrap();
        for i in 0..150u32 {
            tree.insert(&key(i), format!("v-{i}").as_bytes()).unwrap();
        }
        let (root, next, len) = {
            let mut ck = tree.begin_checkpoint();
            ck.write_back().unwrap();
            let frontier = (ck.root(), ck.next_page_id(), ck.len());
            ck.commit();
            frontier
        };
        // Uncommitted epoch on top: must be invisible to the frontier reopen.
        for i in 0..150u32 {
            tree.insert(&key(i), b"uncommitted").unwrap();
        }
        drop(tree);

        let reopened = BTree::open_shadow(
            BufferPool::new(SharedStore(store), 64),
            Some((root, next, len)),
        )
        .unwrap();
        assert_eq!(reopened.len(), 150);
        for i in (0..150u32).step_by(13) {
            assert_eq!(
                reopened.get(&key(i)).unwrap().unwrap(),
                format!("v-{i}").as_bytes()
            );
        }
    }

    #[test]
    fn walk_visits_every_reachable_node_exactly_once() {
        let t = new_tree();
        for i in 0..1_000u32 {
            t.insert(&key(i), b"x").unwrap();
        }
        let mut ids = Vec::new();
        let mut leaves = 0u64;
        t.walk(|id, node| {
            ids.push(id);
            if node.is_leaf() {
                leaves += 1;
            }
        })
        .unwrap();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "a node was visited twice");
        assert!(leaves > 1, "1000 keys cannot fit one leaf");
    }

    #[test]
    fn persists_across_reopen_on_a_log_structured_store() {
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
        let store = LogStore::open_in_memory(config.clone()).unwrap();
        let pool = BufferPool::new(LssPageStore::new(store, config.page_bytes), 32);
        let tree = BTree::open(pool).unwrap();
        for i in 0..500u32 {
            tree.insert(&key(i), format!("value-{i}").as_bytes())
                .unwrap();
        }
        let lss = tree.into_store().unwrap().into_inner();

        // Simulate a restart: recover the log store from its device and reopen the tree.
        let device = lss.into_device();
        let recovered = LogStore::recover_with_device(config.clone(), device).unwrap();
        let pool = BufferPool::new(LssPageStore::new(recovered, config.page_bytes), 32);
        let tree2 = BTree::open(pool).unwrap();
        assert_eq!(tree2.len(), 500);
        for i in (0..500u32).step_by(37) {
            assert_eq!(
                tree2.get(&key(i)).unwrap().unwrap(),
                format!("value-{i}").as_bytes()
            );
        }
    }
}
