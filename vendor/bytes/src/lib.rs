//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The workspace vendors this stub because the build environment has no network access
//! to crates.io. Only the surface the workspace actually uses is provided: [`Bytes`] as
//! a cheaply cloneable, immutable, reference-counted byte buffer.

#![warn(rust_2018_idioms)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer backed by `Arc<[u8]>`.
///
/// Cloning is O(1) (a reference-count bump); the payload itself is shared.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Create a buffer from a static slice (copied; the real crate borrows, but the
    /// observable behaviour is identical for this workspace).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// View the contents as a slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share_contents() {
        let b = Bytes::copy_from_slice(b"hello");
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.as_ref(), b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[1..3], b"el");
    }

    #[test]
    fn from_vec_and_to_vec() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
