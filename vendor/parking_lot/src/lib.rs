//! Offline, API-compatible subset of the `parking_lot` crate built on `std::sync`.
//!
//! Provides [`Mutex`], [`RwLock`] and [`Condvar`] with `parking_lot`'s poison-free API
//! (locking never returns a `Result`; a poisoned std lock is recovered transparently,
//! which matches `parking_lot`'s behaviour of not having poisoning at all).

#![warn(rust_2018_idioms)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock with a poison-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with a poison-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Try to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`MutexGuard`], mirroring `parking_lot`'s API where
/// `wait` takes `&mut MutexGuard` instead of consuming it.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guarded mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during condvar wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during condvar wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
