//! Derive macros for the vendored serde subset.
//!
//! Supports exactly the shapes this workspace serializes:
//!
//! * structs with named fields (`struct S { a: u64, b: Vec<T> }`),
//! * tuple structs (newtypes serialize transparently as their inner value, larger tuple
//!   structs as arrays),
//! * enums whose variants are all unit variants (serialized as the variant name, which
//!   matches real serde's externally-tagged representation).
//!
//! The macro parses the raw token stream directly (no `syn`/`quote`, which are
//! unavailable offline); unsupported shapes (generics, data-carrying enum variants)
//! panic at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What was parsed out of the item the derive is attached to.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitEnum { name: String, variants: Vec<String> },
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, s: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == s)
}

/// Skip `#[...]` attribute groups (including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len()
        && is_punct(&tokens[i], '#')
        && matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
    {
        i += 2;
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if i < tokens.len() && is_ident(&tokens[i], "pub") {
        i += 1;
        if i < tokens.len()
            && matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected a type name, found {other}"),
    };
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::UnitEnum {
                name: name.clone(),
                variants: parse_unit_variants(&name, g.stream()),
            },
            other => panic!("serde derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Parse `name: Type, ...` pairs, returning the field names. Angle-bracket depth is
/// tracked so commas inside `Vec<(A, B)>`-style types do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected a field name, found {other}"),
        };
        i += 1;
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "serde derive: expected `:` after field `{field}`"
        );
        i += 1;
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
            } else if is_punct(&tokens[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Count the fields of a tuple struct body (`(pub u32, pub u64)` has two).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for tt in &tokens {
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if is_punct(tt, ',') && depth == 0 {
            count += 1;
            saw_tokens_since_comma = false;
            continue;
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                panic!("serde derive: expected a variant name in `{enum_name}`, found {other}")
            }
        };
        i += 1;
        if i < tokens.len() && matches!(&tokens[i], TokenTree::Group(_)) {
            panic!(
                "serde derive (vendored): enum `{enum_name}` has data-carrying variant \
                 `{variant}`, which is not supported"
            );
        }
        if i < tokens.len() && is_punct(&tokens[i], '=') {
            panic!(
                "serde derive (vendored): enum `{enum_name}` has an explicit discriminant \
                 on `{variant}`, which is not supported"
            );
        }
        if i < tokens.len() && is_punct(&tokens[i], ',') {
            i += 1;
        }
        variants.push(variant);
    }
    variants
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("let mut __obj = ::serde::Value::new_object();\n");
            for f in &fields {
                body.push_str(&format!(
                    "__obj.push_field(\"{f}\", ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            body.push_str("__obj");
            impl_serialize(&name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            impl_serialize(&name, &body)
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string())"))
                .collect();
            impl_serialize(&name, &format!("match self {{ {} }}", arms.join(", ")))
        }
    };
    code.parse().expect("serde derive generated invalid Rust")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__value, \"{f}\")?"))
                .collect();
            let body = format!(
                "if !matches!(__value, ::serde::Value::Object(_)) {{\n\
                     return ::std::result::Result::Err(::serde::DeError::new(\
                         format!(\"expected object for {name}, found {{:?}}\", __value)));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            );
            impl_deserialize(&name, &body)
        }
        Item::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))"
                )
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::element(__value, {i})?"))
                    .collect();
                format!("::std::result::Result::Ok({name}({}))", items.join(", "))
            };
            impl_deserialize(&name, &body)
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            let body = format!(
                "let __s = __value.as_str().ok_or_else(|| ::serde::DeError::new(\
                     format!(\"expected string variant for {name}, found {{:?}}\", __value)))?;\n\
                 match __s {{\n\
                     {},\n\
                     __other => ::std::result::Result::Err(::serde::DeError::new(\
                         format!(\"unknown variant `{{}}` for {name}\", __other)))\n\
                 }}",
                arms.join(",\n")
            );
            impl_deserialize(&name, &body)
        }
    };
    code.parse().expect("serde derive generated invalid Rust")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
