//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! Measures wall-clock time per iteration and prints a one-line summary per benchmark
//! (median of the sampled iterations, plus derived throughput when configured). It is
//! deliberately tiny: no statistics beyond the median, no HTML reports, no comparisons.
//! When invoked with `--test` (as `cargo test` does for `harness = false` bench targets)
//! every benchmark body runs exactly once, as a smoke test.

#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput specification used to derive per-element rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
    smoke_test: bool,
}

impl Bencher {
    /// Run the benchmarked routine repeatedly, timing each batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke_test {
            black_box(routine());
            self.iters = 1;
            self.total = Duration::from_nanos(1);
            return;
        }
        // One warm-up call, then the timed batch.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo bench -- <filter>` / `cargo test` pass through these flags.
        let smoke_test = args.iter().any(|a| a == "--test");
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.ends_with("bench"))
            .cloned();
        Self {
            sample_size: 10,
            smoke_test,
            filter,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(self, name, None, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size;
        let throughput = self.throughput;
        run_bench(self.criterion, &full, samples, throughput, f);
        self
    }

    /// Finish the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    criterion: &mut Criterion,
    name: &str,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let samples = sample_size.unwrap_or(criterion.sample_size);
    let mut per_iter: Vec<Duration> = Vec::with_capacity(samples);
    let effective_samples = if criterion.smoke_test { 1 } else { samples };
    for _ in 0..effective_samples {
        let mut b = Bencher {
            iters: 1,
            total: Duration::ZERO,
            smoke_test: criterion.smoke_test,
        };
        f(&mut b);
        per_iter.push(b.total / b.iters.max(1) as u32);
    }
    per_iter.sort();
    let median = per_iter[per_iter.len() / 2];
    if criterion.smoke_test {
        println!("bench {name}: ok (smoke test)");
        return;
    }
    match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64();
            println!("bench {name}: {median:?}/iter, {rate:.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            let rate = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
            println!("bench {name}: {median:?}/iter, {rate:.1} MiB/s");
        }
        _ => println!("bench {name}: {median:?}/iter"),
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            smoke_test: false,
            filter: None,
        };
        let mut group = c.benchmark_group("demo");
        group.sample_size(2).throughput(Throughput::Elements(100));
        let mut counter = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                counter += 1;
                black_box(counter)
            })
        });
        group.finish();
        assert!(counter > 0);
    }
}
