//! Offline, API-compatible subset of `serde_json`: render the vendored serde [`Value`]
//! tree to JSON text and parse JSON text back.
//!
//! Supports the full JSON the workspace produces: objects, arrays, strings with escapes,
//! integers, floats (shortest-roundtrip via Rust's `Display`), booleans and null.

#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Serialize a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::deserialize(&value)?)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Display for f64 prints the shortest string that parses back exactly,
        // so serialize → parse roundtrips bit-for-bit.
        out.push_str(&f.to_string());
    } else {
        // Real serde_json also has no representation for NaN/Infinity.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, found {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, found {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate".to_string()));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate".to_string()));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid code point".to_string()))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid code point".to_string()))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                other => {
                    return Err(Error::new(format!(
                        "unterminated string (found {other:?} at offset {})",
                        self.pos
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error::new(format!("invalid \\u escape: {e}")))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| Error::new(format!("invalid \\u escape: {e}")))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(format!("invalid number: {e}")))?;
        let as_float = || {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        };
        if is_float {
            as_float()
        } else if let Some(stripped) = text.strip_prefix('-') {
            match stripped.parse::<u64>() {
                Ok(u) if u <= i64::MAX as u64 => Ok(Value::Int(-(u as i64))),
                // Magnitude beyond i64: store as float (Display of large floats can
                // print an integer form longer than 64 bits).
                _ => as_float(),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::UInt(u)),
                Err(_) => as_float(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1f64, 1.0 / 3.0, 1e300, -2.5e-10, 0.0, 123456.789] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {json} -> {back}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "he said \"hi\"\n\tback\\slash \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        // Explicit \u escapes parse too (incl. surrogate pairs).
        let parsed: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed, "A\u{1F600}");
    }

    #[test]
    fn vectors_and_tuples_roundtrip() {
        let v: Vec<(Vec<u8>, u64)> = vec![(vec![1, 2], 3), (vec![], 9)];
        let json = to_string(&v).unwrap();
        let back: Vec<(Vec<u8>, u64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("42 trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1,2").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u64> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
