//! Offline, API-compatible subset of the `rand` crate.
//!
//! Provides the pieces this workspace uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods `gen`, `gen_bool`
//! and `gen_range` over integer ranges. The generator is `xoshiro256**`, seeded via
//! splitmix64 — high-quality, deterministic and fast; it is not the same stream as the
//! real `StdRng` (ChaCha12), which only matters if exact sequences must match published
//! numbers (they do not in this workspace — seeds are workspace-local).

#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `[0, n)` via 128-bit multiply (Lemire's method without the
/// rejection step; the bias is < 2^-64 per draw, irrelevant for workload generation).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "empty sample range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64) + 1;
                if span == 0 {
                    // Full-width u64 inclusive range.
                    return rng.next_u64() as $t;
                }
                start + below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from a range, e.g. `rng.gen_range(0..n)` or `rng.gen_range(1..=6)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (`xoshiro256**`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // A xoshiro state of all zeros would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but be defensive anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5..=15u32);
            assert!((5..=15).contains(&w));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
    }
}
