//! Offline, API-compatible subset of `serde`.
//!
//! The real serde is a zero-copy visitor framework; this stub trades that for a simple
//! JSON-like value tree ([`Value`]) that `serde_json` (also vendored) renders and parses.
//! The public surface this workspace relies on is preserved:
//!
//! * `use serde::{Serialize, Deserialize};` imports both the traits and the derive
//!   macros (re-exported from the vendored `serde_derive`).
//! * `#[derive(Serialize, Deserialize)]` works on plain structs with named fields,
//!   tuple structs (newtypes serialize transparently), and enums with unit variants
//!   (serialized as their name, matching serde's external tagging).

#![warn(rust_2018_idioms)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-like value tree: the serialization data model of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Create an empty object (used by derived `Serialize` impls).
    pub fn new_object() -> Value {
        Value::Object(Vec::new())
    }

    /// Append a field to an object (used by derived `Serialize` impls).
    pub fn push_field(&mut self, name: &str, value: Value) {
        match self {
            Value::Object(fields) => fields.push((name.to_string(), value)),
            _ => panic!("push_field on a non-object value"),
        }
    }

    /// Look up a field of an object.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Create an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be rendered into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild a value of this type from a value tree.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

/// Fetch and deserialize a named object field (used by derived impls; the target type is
/// inferred from the surrounding struct literal).
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    let v = value
        .get_field(name)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))?;
    T::deserialize(v).map_err(|e| DeError::new(format!("field `{name}`: {e}")))
}

/// Fetch and deserialize a positional array element (used by derived tuple-struct impls).
pub fn element<T: Deserialize>(value: &Value, idx: usize) -> Result<T, DeError> {
    match value {
        Value::Array(items) => {
            let v = items
                .get(idx)
                .ok_or_else(|| DeError::new(format!("missing tuple element {idx}")))?;
            T::deserialize(v).map_err(|e| DeError::new(format!("element {idx}: {e}")))
        }
        other => Err(DeError::new(format!("expected array, found {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(DeError::new(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        DeError::new(format!("{u} out of range for i64"))
                    })?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::new(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::new(format!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(DeError::new(format!(
                "expected 2-element array, found {other:?}"
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            other => Err(DeError::new(format!(
                "expected 3-element array, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(i32::deserialize(&(-5i32).serialize()).unwrap(), -5);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()).unwrap(), None);
        let t = (vec![1u8, 2], 9u64);
        assert_eq!(<(Vec<u8>, u64)>::deserialize(&t.serialize()).unwrap(), t);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let mut obj = Value::new_object();
        obj.push_field("a", Value::UInt(1));
        assert_eq!(field::<u64>(&obj, "a").unwrap(), 1);
        assert!(field::<u64>(&obj, "b").is_err());
    }

    #[test]
    fn numbers_cross_deserialize() {
        // JSON parsing yields UInt for "1"; f64 fields must accept it.
        assert_eq!(f64::deserialize(&Value::UInt(1)).unwrap(), 1.0);
        assert_eq!(u32::deserialize(&Value::Float(7.0)).unwrap(), 7);
        assert!(u32::deserialize(&Value::Float(7.5)).is_err());
    }
}
