//! The server's durability contract, end to end over real sockets: every PUT the
//! server has OK-acked as durable (PROTOCOL.md §5.2) must be readable after the
//! process and device come back — even when the device died mid-storm at a seeded
//! write boundary. Three writer clients pipeline durable PUTs (§7) at depth 8, the
//! backing [`common::CrashPointDevice`] is killed under them, and recovery from the
//! surviving bytes alone must contain every acked key. `LSS_STRESS_SEED` varies the
//! crash boundary per CI stress iteration.

mod common;

use common::{apply_env_concurrency, stress_seed_or, CrashPointDevice};
use lss::btree::kv::{KvOptions, KvStore};
use lss::client::{Client, ClientOptions};
use lss::core::policy::PolicyKind;
use lss::core::{LogStore, StoreConfig};
use lss::server::protocol::{Request, Response};
use lss::server::{Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

const WRITERS: usize = 3;
const DEPTH: usize = 8;

fn config() -> StoreConfig {
    let mut c = apply_env_concurrency(StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc));
    c.num_segments = 256;
    c
}

fn key(writer: usize, i: u32) -> Vec<u8> {
    format!("w{writer}:{i:05}").into_bytes()
}

fn value(writer: usize, i: u32) -> Vec<u8> {
    format!("writer-{writer}-payload-{i}").into_bytes()
}

/// One writer: pipeline durable PUTs at `DEPTH`, recording each OK-acked key.
/// Stops at the first error reply or transport failure (the device just died) —
/// unacked writes carry no promise, so they are simply not recorded.
fn writer_storm(addr: &str, writer: usize, puts: u32) -> Vec<u32> {
    let mut client = match Client::connect_with(
        addr,
        ClientOptions {
            connect_attempts: 1,
            retry_mutations: false,
            ..ClientOptions::default()
        },
    ) {
        Ok(c) => c,
        Err(_) => return Vec::new(), // server already gone: nothing was acked
    };
    let mut in_flight: HashMap<u64, u32> = HashMap::new();
    let mut acked = Vec::new();
    let mut reap = |client: &mut Client, in_flight: &mut HashMap<u64, u32>| -> bool {
        match client.recv() {
            Ok((corr, Response::Put)) => {
                let i = in_flight.remove(&corr).expect("unknown corr id");
                acked.push(i);
                true
            }
            Ok((_, Response::Err { .. })) | Err(_) => false,
            Ok((_, other)) => panic!("writer {writer}: unexpected reply {other:?}"),
        }
    };
    'storm: for i in 0..puts {
        while in_flight.len() >= DEPTH {
            if !reap(&mut client, &mut in_flight) {
                break 'storm;
            }
        }
        match client.send(&Request::Put {
            key: key(writer, i),
            value: value(writer, i),
            durable: true,
        }) {
            Ok(corr) => {
                in_flight.insert(corr, i);
            }
            Err(_) => break,
        }
    }
    while !in_flight.is_empty() {
        if !reap(&mut client, &mut in_flight) {
            break;
        }
    }
    acked
}

/// Run the three-writer storm against a server on `device`, optionally killing the
/// device after `fail_after` more segment writes. Returns the acked keys per writer.
fn run_storm(device: &CrashPointDevice, fail_after: Option<u64>, puts: u32) -> Vec<Vec<u32>> {
    let store =
        LogStore::open_with_device(config(), Box::new(device.clone())).expect("fresh store");
    let kv = Arc::new(
        KvStore::open_with(
            store,
            KvOptions {
                group_commit_window_us: 200,
                ..KvOptions::default()
            },
        )
        .unwrap(),
    );
    let server = Server::start(Arc::clone(&kv), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    if let Some(budget) = fail_after {
        device.fail_after(budget);
    }
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let addr = addr.clone();
            std::thread::spawn(move || writer_storm(&addr, w, puts))
        })
        .collect();
    let acked: Vec<Vec<u32>> = writers.into_iter().map(|h| h.join().unwrap()).collect();
    server.shutdown();
    drop(server);
    drop(kv); // stop the old store's background threads before the device heals
    acked
}

/// Recover from the device bytes alone and assert every acked key reads back its
/// exact value; then prove the recovered store is writable.
fn check_recovery(device: &CrashPointDevice, acked: &[Vec<u32>]) {
    device.heal();
    let store =
        LogStore::recover_with_device(config(), Box::new(device.clone())).expect("recovery");
    let kv = KvStore::open(store).expect("KV layer over recovered store");
    let total: usize = acked.iter().map(Vec::len).sum();
    for (writer, keys) in acked.iter().enumerate() {
        for &i in keys {
            assert_eq!(
                kv.get(&key(writer, i)).unwrap().as_deref(),
                Some(&value(writer, i)[..]),
                "acked durable PUT w{writer}:{i:05} lost across crash+recovery ({total} acked)"
            );
        }
    }
    kv.put(b"post-recovery", b"writable").unwrap();
    kv.flush().unwrap();
    assert_eq!(
        kv.get(b"post-recovery").unwrap().as_deref(),
        Some(&b"writable"[..])
    );
}

#[test]
fn clean_restart_keeps_every_acked_write() {
    let cfg = config();
    let device = CrashPointDevice::new(cfg.segment_bytes, cfg.num_segments);
    let acked = run_storm(&device, None, 200);
    // A graceful run acks everything it sent.
    for (writer, keys) in acked.iter().enumerate() {
        assert_eq!(keys.len(), 200, "writer {writer} lost acks without a crash");
    }
    check_recovery(&device, &acked);
}

#[test]
fn device_crash_mid_storm_keeps_every_acked_write() {
    let seed = stress_seed_or(0xD00D_F17E);
    let mut rng = StdRng::seed_from_u64(seed);
    // A small matrix of crash boundaries per run; the CI stress loop re-seeds the
    // whole matrix each iteration, sweeping ever more boundaries over time.
    for round in 0..3u64 {
        let budget = rng.gen_range(5..120u64);
        let cfg = config();
        let device = CrashPointDevice::new(cfg.segment_bytes, cfg.num_segments);
        let acked = run_storm(&device, Some(budget), 400);
        let total: usize = acked.iter().map(Vec::len).sum();
        // The interesting half of the matrix is a crash with acks outstanding, but a
        // budget large enough for a full run is also a valid (clean) data point.
        check_recovery(&device, &acked);
        println!(
            "seed {seed:#x} round {round}: budget {budget} writes, {total} acked PUTs survived"
        );
    }
}
