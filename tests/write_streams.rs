//! Acceptance tests for the sharded write path (per-stream append pipelines).
//!
//! * routing: pages spread across all configured streams, the routing is stable, and
//!   data written through every stream reads back correctly;
//! * recovery: a crash with every stream mid-drain (buffered writes, open segments,
//!   sealed segments all in flight) loses only unflushed data and rebuilds all streams;
//! * scaling sanity: concurrent writers on a multi-stream store preserve every write
//!   under overwrite pressure with cleaning running.

use lss::core::policy::PolicyKind;
use lss::core::{LogStore, SharedLogStore, StoreConfig};

fn payload(page: u64, version: u64, len: usize) -> Vec<u8> {
    let mut v = vec![(page ^ version) as u8; len.max(16)];
    v[..8].copy_from_slice(&page.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode(bytes: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(bytes[..8].try_into().unwrap()),
        u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
    )
}

/// Distinct pages must spread over every configured stream, and a page's stream must
/// never change (per-page ordering depends on it).
#[test]
fn puts_to_distinct_pages_cover_distinct_streams() {
    let config = StoreConfig::small_for_tests()
        .with_policy(PolicyKind::Mdc)
        .with_write_streams(4);
    let store = LogStore::open_in_memory(config.clone()).unwrap();
    assert_eq!(store.write_stream_count(), 4);

    let mut per_stream = vec![0u64; 4];
    for page in 0..512u64 {
        per_stream[store.stream_of_page(page)] += 1;
        store.put(page, &payload(page, 1, 32)).unwrap();
        // Stable routing: asking again gives the same stream.
        assert_eq!(
            store.stream_of_page(page),
            store.stream_of_page(page),
            "routing must be deterministic"
        );
    }
    // The hash spreads a dense page-id range over all streams, none starved.
    for (s, n) in per_stream.iter().enumerate() {
        assert!(
            *n > 512 / 16,
            "stream {s} only received {n} of 512 pages: {per_stream:?}"
        );
    }

    store.flush().unwrap();
    for page in 0..512u64 {
        let got = store.get(page).unwrap().unwrap();
        assert_eq!(decode(&got), (page, 1), "page {page} corrupt after flush");
    }
}

/// Crash with every stream mid-drain: some writes flushed, some sealed but unsynced,
/// some still buffered. Recovery must rebuild the page table for all streams and lose
/// exactly the unflushed tail.
#[test]
fn recovery_rebuilds_all_streams_after_crash_mid_drain() {
    let mut config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
    config.write_streams = 4;
    config.num_segments = 128;
    let config = config;
    let store = LogStore::open_in_memory(config.clone()).unwrap();

    // Phase 1 (durable): enough pages that every stream has sealed segments.
    let durable = config.logical_pages_for_fill_factor(0.4) as u64;
    for p in 0..durable {
        store.put(p, &payload(p, 1, config.page_bytes)).unwrap();
    }
    store.flush().unwrap();

    // Phase 2 (volatile): overwrite a slice of every stream's pages without flushing —
    // these writes sit in buffer shards and open segments when the "process dies".
    for p in 0..durable / 2 {
        store.put(p, &payload(p, 99, config.page_bytes)).unwrap();
    }

    // Crash: drop in-memory state, keep the device.
    let device = store.into_device();
    let recovered = LogStore::recover_with_device(config.clone(), device).unwrap();

    assert_eq!(
        recovered.live_pages() as u64,
        durable,
        "recovery must rebuild every flushed page"
    );
    for p in 0..durable {
        let got = recovered
            .get(p)
            .unwrap()
            .unwrap_or_else(|| panic!("flushed page {p} lost in crash"));
        let (page, version) = decode(&got);
        assert_eq!(page, p);
        if p < durable / 2 {
            // Overwritten after the flush: the flushed version must survive; the
            // volatile overwrite may also have made it into a sealed segment before the
            // crash (allowed — never guaranteed), but a torn/foreign payload may not.
            assert!(
                version == 1 || version == 99,
                "page {p} recovered impossible version {version}"
            );
        } else {
            assert_eq!(version, 1, "page {p} lost its flushed version");
        }
    }

    // The recovered store writes through all streams again.
    for p in 0..durable {
        recovered.put(p, &payload(p, 2, config.page_bytes)).unwrap();
    }
    recovered.flush().unwrap();
    for p in 0..durable {
        assert_eq!(decode(&recovered.get(p).unwrap().unwrap()), (p, 2));
    }
}

/// Concurrent writers (more threads than streams) under overwrite pressure with the
/// background cleaner running: every page must hold its final version, per stream.
#[test]
fn concurrent_writers_across_streams_preserve_final_versions() {
    let mut config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
    config.write_streams = 4;
    config.num_segments = 128;
    let config = config;
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());

    let writers = 6u64;
    let pages_per_writer = 120u64;
    let rounds = 12u64;
    let len = config.page_bytes;

    std::thread::scope(|scope| {
        for w in 0..writers {
            let store = store.clone();
            scope.spawn(move || {
                for round in 1..=rounds {
                    for i in 0..pages_per_writer {
                        let page = w * 10_000 + (i * 7 + round) % pages_per_writer;
                        store.put(page, &payload(page, round, len)).unwrap();
                    }
                }
            });
        }
    });
    store.flush().unwrap();

    assert!(store.stats().cleaning_cycles > 0, "cleaning never ran");
    for w in 0..writers {
        for i in 0..pages_per_writer {
            let page = w * 10_000 + i;
            let got = store
                .get(page)
                .unwrap()
                .unwrap_or_else(|| panic!("page {page} lost"));
            let (p, version) = decode(&got);
            assert_eq!(p, page);
            assert_eq!(version, rounds, "page {page} lost its final round");
        }
    }
}

/// `write_streams = 1` must still behave exactly like the pre-sharding store
/// (single-mutex semantics as a degenerate case of the sharded design).
#[test]
fn single_stream_config_still_works() {
    let config = StoreConfig::small_for_tests()
        .with_policy(PolicyKind::Greedy)
        .with_write_streams(1);
    let store = LogStore::open_in_memory(config.clone()).unwrap();
    assert_eq!(store.write_stream_count(), 1);
    let pages = config.logical_pages_for_fill_factor(0.5) as u64;
    let body = vec![3u8; config.page_bytes];
    for i in 0..(config.physical_pages() as u64 * 3) {
        store.put(i % pages, &body).unwrap();
    }
    store.flush().unwrap();
    assert!(store.stats().cleaning_cycles > 0);
    for i in 0..pages {
        assert!(store.get(i).unwrap().is_some(), "page {i} lost");
    }
}
