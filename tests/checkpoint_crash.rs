//! Crash matrix for the incremental checkpoint journal: the device dies at **every
//! write boundary** of a shard checkpoint (the capture seals and syncs every open
//! segment before a single journal byte is written), and the journal itself is torn at
//! every line boundary and mid-line. Reopen must always land on the last *committed*
//! frontier — the new checkpoint when its commit record survived, the previous one
//! otherwise — and never on a blend.
//!
//! Same sweep style as `tests/kv_crash.rs`: count device writes with
//! [`common::CrashPointDevice`], rebuild the same deterministic store per iteration,
//! allow `n` more writes, kill. The journal is a plain file (it never goes through the
//! segment device), so its torn-tail sweep truncates the file directly instead.

mod common;

use common::{apply_env_concurrency, CrashPointDevice};
use lss::core::policy::PolicyKind;
use lss::core::recovery::recover_from_checkpoint_with_report;
use lss::core::{LogStore, StoreConfig};
use std::collections::HashMap;

/// page → version; absent means deleted (or never written).
type Model = HashMap<u64, u64>;

const PAGES: u64 = 220;

fn config() -> StoreConfig {
    let mut c = apply_env_concurrency(StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc));
    // Generous headroom: no cleaning runs, so no tombstone is ever dropped and every
    // recovery flavour (journal at either commit, raw scan) sees the same facts.
    c.num_segments = 192;
    c
}

fn payload(page: u64, version: u64, len: usize) -> Vec<u8> {
    let mut v = vec![(page ^ version) as u8; len.max(16)];
    v[..8].copy_from_slice(&page.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "lss-ckpt-crash-{tag}-{}-{n}.ckpt",
        std::process::id()
    ))
}

/// The epoch checkpoint 1 commits.
fn phase1(store: &LogStore, config: &StoreConfig, model: &mut Model) {
    for p in 0..PAGES {
        store.put(p, &payload(p, 1, config.page_bytes)).unwrap();
        model.insert(p, 1);
    }
    for p in (0..PAGES).step_by(9) {
        store.delete(p).unwrap();
        model.remove(&p);
    }
}

/// The epoch the crash interrupts: overwrites, fresh pages, deletions.
fn phase2(store: &LogStore, config: &StoreConfig, model: &mut Model) {
    for p in (0..PAGES).step_by(2) {
        store.put(p, &payload(p, 2, config.page_bytes)).unwrap();
        model.insert(p, 2);
    }
    for p in PAGES..PAGES + 40 {
        store.put(p, &payload(p, 2, config.page_bytes)).unwrap();
        model.insert(p, 2);
    }
    for p in (1..PAGES).step_by(13) {
        store.delete(p).unwrap();
        model.remove(&p);
    }
}

fn assert_exact(store: &LogStore, model: &Model, config: &StoreConfig, ctx: &str) {
    assert_eq!(store.live_pages(), model.len(), "{ctx}: live-page count");
    for p in 0..PAGES + 40 {
        match model.get(&p) {
            Some(&version) => assert_eq!(
                store.get(p).unwrap().as_deref(),
                Some(payload(p, version, config.page_bytes).as_slice()),
                "{ctx}: page {p}"
            ),
            None => assert!(
                store.get(p).unwrap().is_none(),
                "{ctx}: page {p} should be absent"
            ),
        }
    }
}

/// Kill the device after `budget` writes during the second (incremental) shard
/// checkpoint. The capture's seal-and-sync happens entirely before the journal is
/// touched, so the journal is either exactly commit 1 or exactly commit 2 — and reopen
/// through it must reflect that frontier.
#[test]
fn shard_checkpoint_device_crash_matrix_lands_on_a_committed_frontier() {
    let config = config();

    // Dry run: device writes a healthy second checkpoint needs (seals + sync).
    let healthy_writes = {
        let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
        let path = temp_path("dry");
        let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let mut model = Model::new();
        phase1(&store, &config, &mut model);
        store.checkpoint_log_to(&path).unwrap();
        phase2(&store, &config, &mut model);
        let before = device.writes();
        store.checkpoint_log_to(&path).unwrap();
        std::fs::remove_file(&path).ok();
        device.writes() - before
    };
    assert!(
        healthy_writes >= 1,
        "a checkpoint with open segments must seal to the device, saw {healthy_writes}"
    );

    let mut old_frontier_outcomes = 0u32;
    let mut new_frontier_outcomes = 0u32;
    // `+ 1`: the device's sync fails on an exhausted budget, so the fully-healthy
    // iteration needs one spare unit beyond the counted segment writes.
    for budget in 0..=healthy_writes + 1 {
        let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
        let path = temp_path("sweep");
        let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let mut model1 = Model::new();
        phase1(&store, &config, &mut model1);
        store.checkpoint_log_to(&path).unwrap();
        let mut model2 = model1.clone();
        phase2(&store, &config, &mut model2);

        device.fail_after(budget);
        let ckpt2 = store.checkpoint_log_to(&path);
        device.kill();
        drop(store); // the process dies; device image + journal file survive

        device.heal();
        let ctx = format!("crash after {budget}/{healthy_writes} checkpoint writes");
        let (recovered, report) =
            recover_from_checkpoint_with_report(config.clone(), Box::new(device.clone()), &path)
                .unwrap_or_else(|e| panic!("{ctx}: reopen through the journal failed: {e}"));

        // Whichever frontier won, each page must read as some prefix point of its
        // *own* update sequence — its committed phase-1 state or the state after any
        // of its phase-2 updates (a put may be durable while a later delete of the
        // same page was still volatile, and pages still in sort buffers at capture
        // time are volatile by contract) — never a value from outside that history.
        let mut acceptable: HashMap<u64, Vec<Option<u64>>> = HashMap::new();
        for p in 0..PAGES + 40 {
            acceptable.insert(p, vec![model1.get(&p).copied()]);
        }
        // Phase 2's update sequence, in order (mirrors `phase2`).
        for p in (0..PAGES).step_by(2) {
            acceptable.get_mut(&p).unwrap().push(Some(2));
        }
        for p in PAGES..PAGES + 40 {
            acceptable.get_mut(&p).unwrap().push(Some(2));
        }
        for p in (1..PAGES).step_by(13) {
            acceptable.get_mut(&p).unwrap().push(None);
        }
        for p in 0..PAGES + 40 {
            let got = recovered.get(p).unwrap();
            let ok = acceptable[&p].iter().any(|state| {
                got.as_deref() == state.map(|v| payload(p, v, config.page_bytes)).as_deref()
            });
            assert!(
                ok,
                "{ctx}: page {p} holds a value outside its own update history"
            );
        }
        for p in (0..PAGES).step_by(9) {
            // Odd pages in this stripe are never re-put by phase 2 (its puts only
            // touch even pages): their phase-1 delete must hold unconditionally.
            if p % 2 == 1 {
                assert!(
                    recovered.get(p).unwrap().is_none(),
                    "{ctx}: page {p}, deleted before checkpoint 1, resurrected"
                );
            }
        }
        // Journal recovery must agree page-for-page with the raw full scan of the
        // same device: both see exactly the durable truth, regardless of which
        // commit the journal landed on.
        let scanned =
            LogStore::recover_with_device(config.clone(), Box::new(device.clone())).unwrap();
        assert_eq!(
            recovered.live_pages(),
            scanned.live_pages(),
            "{ctx}: journal and scan recovery disagree on the live set"
        );
        for p in 0..PAGES + 40 {
            assert_eq!(
                recovered.get(p).unwrap(),
                scanned.get(p).unwrap(),
                "{ctx}: journal and scan recovery disagree on page {p}"
            );
        }
        if ckpt2.is_ok() {
            // Commit 2 landed: its frontier covers everything sealed, no tail replay.
            assert_eq!(report.replayed_segments, 0, "{ctx}: tail beyond commit 2");
            new_frontier_outcomes += 1;
        } else {
            // The capture died before the journal was touched: reopen landed on
            // commit 1's frontier and replayed the durable phase-2 tail on top.
            old_frontier_outcomes += 1;
        }

        // Life goes on: a fresh write, a fresh checkpoint to the same journal, and one
        // more journal reopen all succeed.
        recovered.put(0, &payload(0, 9, config.page_bytes)).unwrap();
        recovered.flush().unwrap();
        recovered.checkpoint_log_to(&path).unwrap();
        let reopened =
            LogStore::recover_with_checkpoint(config.clone(), recovered.into_device(), &path)
                .unwrap();
        assert_eq!(
            reopened.get(0).unwrap().as_deref(),
            Some(payload(0, 9, config.page_bytes).as_slice()),
            "{ctx}: post-recovery checkpoint lost"
        );
        std::fs::remove_file(&path).ok();
    }
    assert!(
        old_frontier_outcomes > 0,
        "no crash point fell back to commit 1 — the sweep missed the capture window"
    );
    assert!(
        new_frontier_outcomes > 0,
        "no crash point reached commit 2 — the sweep never let the checkpoint finish"
    );
}

/// Tear the journal file at every line boundary and mid-line. A prefix containing
/// commit 2 recovers the new frontier (no tail replay); a prefix containing only
/// commit 1 falls back to it and replays the flushed phase-2 tail to the identical
/// final state; a prefix with no commit at all is rejected, and the raw device scan
/// still recovers everything.
#[test]
fn torn_journal_tail_falls_back_to_the_previous_commit() {
    let config = config();
    let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
    let path = temp_path("torn");
    let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();
    let mut model = Model::new();
    phase1(&store, &config, &mut model);
    store.checkpoint_log_to(&path).unwrap();
    let commit1_len = std::fs::metadata(&path).unwrap().len() as usize;
    phase2(&store, &config, &mut model);
    // Flush before the second checkpoint so the whole phase-2 tail is sealed: a
    // reopen from commit 1 then replays it back to the exact same final state.
    store.flush().unwrap();
    store.checkpoint_log_to(&path).unwrap();
    drop(store);

    let journal = std::fs::read(&path).unwrap();
    assert!(journal.len() > commit1_len, "checkpoint 2 appended nothing");

    // Truncation points: start, every line boundary, and the middle of every line.
    let mut cuts = vec![0usize];
    let mut line_start = 0usize;
    for (i, &b) in journal.iter().enumerate() {
        if b == b'\n' {
            cuts.push(line_start + (i - line_start) / 2);
            cuts.push(i + 1);
            line_start = i + 1;
        }
    }
    cuts.sort_unstable();
    cuts.dedup();

    let mut new_commit = 0u32;
    let mut prev_commit = 0u32;
    let mut rejected = 0u32;
    for &cut in &cuts {
        let torn = temp_path("torn-cut");
        std::fs::write(&torn, &journal[..cut]).unwrap();
        let ctx = format!("journal torn at byte {cut}/{}", journal.len());
        match recover_from_checkpoint_with_report(config.clone(), Box::new(device.clone()), &torn) {
            Ok((recovered, report)) => {
                assert_exact(&recovered, &model, &config, &ctx);
                if cut >= journal.len() {
                    assert_eq!(report.replayed_segments, 0, "{ctx}: tail beyond commit 2");
                }
                if report.replayed_segments == 0 {
                    new_commit += 1;
                } else {
                    // Fell back to commit 1 and replayed the phase-2 tail.
                    assert!(cut >= commit1_len, "{ctx}: replay without a full commit 1");
                    prev_commit += 1;
                }
            }
            Err(_) => {
                // No commit survived the tear. The journal is unusable but the device
                // is intact: the raw scan must still recover the exact state.
                assert!(cut < journal.len(), "{ctx}: full journal rejected");
                rejected += 1;
                let scanned =
                    LogStore::recover_with_device(config.clone(), Box::new(device.clone()))
                        .unwrap();
                assert_exact(&scanned, &model, &config, &format!("{ctx}, raw scan"));
            }
        }
        std::fs::remove_file(&torn).ok();
    }
    assert!(rejected > 0, "no cut point lost every commit");
    assert!(prev_commit > 0, "no cut point fell back to commit 1");
    assert!(new_commit > 0, "no cut point preserved commit 2");
    std::fs::remove_file(&path).ok();
}
