//! Adaptive GC-controller tests: runtime clamping to the configured bounds,
//! scale-up under allocation pressure, damped scale-down when pressure lifts,
//! stall escalation on the out-of-space path, `CleanerMode::Fixed` staying inert
//! (bit-for-bit the pre-controller behaviour, proven in the race harness), and —
//! the critical safety property — a scale-down landing *while a cycle is in flight*
//! stranding no claims, no quarantine entries and no data.
//!
//! The deterministic lever is [`LogStore::gc_controller_tick`]: a forced controller
//! decision at an exact point, observed through the same phase hook the cleaner-race
//! harness uses ([`common::PhaseGate`], which records
//! [`GcPhase::ControllerDecision`] events alongside the cycle phases).

use lss::core::config::CleaningConfig;
use lss::core::policy::PolicyKind;
use lss::core::{AdaptiveTargets, CleanerMode, GcPhase, LogStore, StoreConfig};
use std::collections::HashMap;
use std::sync::Arc;

mod common;
use common::PhaseGate;

/// Self-describing page payload: `[page_id, version, filler...]`.
fn payload(page: u64, version: u64, len: usize) -> Vec<u8> {
    let mut v = vec![(page ^ version) as u8; len.max(16)];
    v[..8].copy_from_slice(&page.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode(bytes: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(bytes[..8].try_into().unwrap()),
        u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
    )
}

/// A geometry with a wide trigger band (reserve 2 → trigger 32 of 128 segments), so
/// tests can park the free count at controlled depths inside the band.
fn adaptive_config(min: usize, max: usize) -> StoreConfig {
    let mut config = StoreConfig::small_for_tests()
        .with_policy(PolicyKind::Greedy)
        .with_cleaner_mode(CleanerMode::adaptive(min, max));
    config.num_segments = 128;
    // A wide trigger band and a batch big enough that even a maximally widened pool
    // still runs multi-victim cycles (a 1-victim cycle that seals a nearly empty GC
    // output per victim can churn at net zero — the degenerate small-batch
    // equilibrium the paper's 64-victim batch avoids).
    config.cleaning = CleaningConfig {
        trigger_free_segments: 32,
        segments_per_cycle: 16,
        reserved_free_segments: 2,
        ..CleaningConfig::default()
    };
    config
}

/// Pure growth (never overwrites) until the free pool sinks to `target_free`.
fn grow_until_free_at_most(store: &LogStore, target_free: usize) -> u64 {
    let len = store.config().page_bytes;
    let mut page = 0u64;
    while store.free_segments() > target_free {
        store.put(page, &payload(page, 1, len)).unwrap();
        page += 1;
        assert!(page < 1_000_000, "store never reached {target_free} free");
    }
    store.flush().unwrap();
    page
}

#[test]
fn adaptive_store_starts_at_min_and_clamps_every_decision_to_the_bounds() {
    let store = LogStore::open_in_memory(adaptive_config(2, 3)).unwrap();
    assert_eq!(store.gc_target_cycles(), 2, "idle start must be min_cycles");

    let gate = PhaseGate::new(&[], 0); // record-only: nothing pauses
    store.set_gc_phase_hook(Some(gate.hook()));

    // Drive decisions across the whole pressure range: idle, mid-band, deep growth,
    // cleaning, and back to idle. Whatever the rule decides, it stays in [2, 3].
    store.gc_controller_tick();
    grow_until_free_at_most(&store, 16);
    store.gc_controller_tick();
    for i in 0..400u64 {
        store
            .put(i, &payload(i, 2, store.config().page_bytes))
            .unwrap();
        if i % 64 == 0 {
            store.gc_controller_tick();
        }
    }
    store.flush().unwrap();
    // Clean until the pool stops growing (greedy always finds *some* slack to
    // compact, so "freed nothing" alone never terminates on a slack-laden store).
    loop {
        let before = store.free_segments();
        store.clean_now().unwrap();
        if store.free_segments() <= before {
            break;
        }
    }
    for _ in 0..10 {
        store.gc_controller_tick();
    }
    store.set_gc_phase_hook(None);

    let decisions = gate.decisions();
    assert!(
        decisions.len() >= 10,
        "controller barely ticked: {} decisions",
        decisions.len()
    );
    assert!(
        decisions.iter().all(|&t| (2..=3).contains(&t)),
        "decision left the configured bounds: {decisions:?}"
    );
    let stats = store.stats();
    assert_eq!(stats.gc_controller_decisions, decisions.len() as u64);
    assert!((2..=3).contains(&(stats.gc_target_cycles as usize)));
}

#[test]
fn target_scales_up_under_pressure_and_steps_down_damped_when_it_lifts() {
    let config = adaptive_config(1, 4);
    let store = LogStore::open_in_memory(config.clone()).unwrap();
    assert_eq!(store.gc_target_cycles(), 1);

    // Sink the free pool deep into the trigger band with pure growth (nothing
    // reclaimable, so the level holds still for the tick).
    let pages = grow_until_free_at_most(&store, 8);
    let up = store.gc_controller_tick();
    assert!(
        up > 1,
        "deep allocation pressure (free=8, trigger=32) did not widen the pool"
    );
    assert_eq!(up, store.gc_target_cycles());
    let stats = store.stats();
    assert!(stats.gc_scale_ups >= 1);
    assert_eq!(stats.gc_target_cycles as usize, up);

    // Lift the pressure: delete two thirds of the data and clean until the pool is
    // back above the trigger.
    for p in 0..pages {
        if p % 3 != 0 {
            store.delete(p).unwrap();
        }
    }
    store.flush().unwrap();
    // Bounded drain: with the victim budget split across the widened pool, single
    // cycles can net zero for a while (GC outputs filling slowly), so drive a full
    // sweep's worth of cycles rather than stopping at the first flat stretch.
    for _ in 0..(4 * config.num_segments) {
        if store.free_segments() > config.cleaning.trigger_free_segments {
            break;
        }
        store.clean_now().unwrap();
    }
    assert!(
        store.free_segments() > config.cleaning.trigger_free_segments,
        "cleaning failed to lift the pressure"
    );

    // One warm-up tick consumes any stall edge left over from the delete phase (the
    // first tick after a stall is an escalation, not a descent step).
    store.gc_controller_tick();

    // Scale-down is damped: each step needs `scale_down_ticks` consecutive low
    // ticks, and the target only ever sheds one cycle at a time.
    let ticks = AdaptiveTargets::default().scale_down_ticks as usize;
    let start = store.gc_target_cycles();
    let mut current = start;
    let mut steps = 0;
    for _ in 0..(ticks * 8) {
        let next = store.gc_controller_tick();
        assert!(
            next == current || next + 1 == current,
            "target moved {current} -> {next}: scale-down must shed one cycle at a time"
        );
        if next < current {
            steps += 1;
        }
        current = next;
        if current == 1 {
            break;
        }
    }
    assert_eq!(
        current, 1,
        "target never returned to min after pressure lifted"
    );
    assert_eq!(steps, start - 1);
    let stats = store.stats();
    assert!(stats.gc_scale_downs >= steps as u64);

    // All surviving data is intact after the whole excursion.
    for p in 0..pages {
        let got = store.get(p).unwrap();
        if p % 3 == 0 {
            assert_eq!(decode(&got.expect("survivor lost")), (p, 1));
        } else {
            assert!(got.is_none(), "deleted page {p} resurrected");
        }
    }
}

/// Genuine exhaustion forces the writer escalation ladder; on the way, the straggler
/// reclaim must record the stall and the controller must answer it with the maximum
/// target — the out-of-space error is unchanged.
#[test]
fn out_of_space_path_records_stalls_and_escalates_to_max() {
    let config = StoreConfig::small_for_tests()
        .with_policy(PolicyKind::Greedy)
        .with_cleaner_mode(CleanerMode::adaptive(1, 2));
    let store = LogStore::open_in_memory(config.clone()).unwrap();
    let payload = vec![0u8; config.page_bytes];
    let mut result = Ok(());
    for i in 0..(config.physical_pages() as u64 * 2) {
        result = store.put(i, &payload); // pure growth: eventually truly full
        if result.is_err() {
            break;
        }
    }
    assert!(matches!(result, Err(lss::core::Error::OutOfSpace { .. })));
    let stats = store.stats();
    assert!(
        stats.straggler_reclaims >= 1,
        "the escalation ladder never ran a straggler reclaim"
    );
    assert_eq!(
        stats.gc_target_cycles, 2,
        "a stalled writer must escalate the adaptive target to max"
    );
}

/// `CleanerMode::Fixed` reproduces the pre-controller behaviour exactly in the race
/// harness: two concurrent cycles still claim disjoint victims with foreground traffic
/// progressing, the target is pinned at `cleaner_threads`, and the controller emits
/// zero decisions (no [`GcPhase::ControllerDecision`] events, no counters).
#[test]
fn fixed_mode_is_inert_in_the_race_harness() {
    let mut config = StoreConfig::small_for_tests()
        .with_policy(PolicyKind::Greedy)
        .with_cleaner_threads(2);
    config.num_segments = 128;
    assert!(!config.cleaner_mode.is_adaptive());
    let store = Arc::new(LogStore::open_in_memory(config.clone()).unwrap());

    // Prime reclaimable garbage.
    let mut model = HashMap::new();
    let pages = 512u64;
    for p in 0..pages {
        store.put(p, &payload(p, 1, config.page_bytes)).unwrap();
        model.insert(p, 1u64);
    }
    for n in 0..pages / 2 {
        let p = (n * 11 + 3) % pages;
        store.put(p, &payload(p, 2, config.page_bytes)).unwrap();
        model.insert(p, 2);
    }
    store.flush().unwrap();

    let gate = PhaseGate::new(&[GcPhase::VictimRead], 2);
    store.set_gc_phase_hook(Some(gate.hook()));
    let cleaners: Vec<_> = (0..2)
        .map(|_| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.clean_now().unwrap())
        })
        .collect();
    let tokens = gate.wait_paused_at(GcPhase::VictimRead, 2);
    let a: std::collections::HashSet<_> = gate.victims_of(tokens[0]).into_iter().collect();
    let b: std::collections::HashSet<_> = gate.victims_of(tokens[1]).into_iter().collect();
    assert!(!a.is_empty() && !b.is_empty());
    assert!(
        a.is_disjoint(&b),
        "fixed-mode cycles overlapped: {a:?} vs {b:?}"
    );

    // Foreground traffic progresses; a forced tick is a no-op returning the pinned
    // target and fires nothing.
    store
        .put(9_999, &payload(9_999, 7, config.page_bytes))
        .unwrap();
    assert_eq!(store.gc_controller_tick(), 2);
    assert_eq!(store.gc_target_cycles(), 2);

    gate.open_wide();
    for c in cleaners {
        c.join().unwrap();
    }
    store.set_gc_phase_hook(None);

    assert!(
        gate.decisions().is_empty(),
        "fixed mode fired controller decisions: {:?}",
        gate.decisions()
    );
    let stats = store.stats();
    assert_eq!(stats.gc_controller_decisions, 0);
    assert_eq!(stats.gc_scale_ups, 0);
    assert_eq!(stats.gc_scale_downs, 0);
    assert_eq!(stats.gc_target_cycles, 2);
    for (&p, &version) in &model {
        assert_eq!(decode(&store.get(p).unwrap().unwrap()), (p, version));
    }
}

/// The safety property of scaling down: a decision that shrinks the target while a
/// cycle is mid-flight (paused at `Relocated`, claims and quarantine entries live)
/// never cancels that cycle — it completes normally, and afterwards no claim, no
/// quarantine entry and no page is stranded.
#[test]
fn scale_down_during_an_inflight_cycle_strands_nothing() {
    let mut config = adaptive_config(1, 2);
    // One low tick per scale-down step, so the test needs no long streaks.
    config.cleaner_mode = CleanerMode::Adaptive {
        min_cycles: 1,
        max_cycles: 2,
        targets: AdaptiveTargets {
            scale_down_ticks: 1,
            ..Default::default()
        },
    };
    let store = Arc::new(LogStore::open_in_memory(config.clone()).unwrap());

    // Checkerboard garbage deep in the trigger band: half-dead sealed segments give
    // the fragmentation signal, the sunken pool the depth signal.
    let mut model: HashMap<u64, u64> = HashMap::new();
    let len = config.page_bytes;
    let mut page = 0u64;
    while store.free_segments() > 12 {
        store.put(page, &payload(page, 1, len)).unwrap();
        model.insert(page, 1);
        if page.is_multiple_of(2) && page > 0 {
            let again = page / 2;
            store.put(again, &payload(again, 2, len)).unwrap();
            model.insert(again, 2);
        }
        page += 1;
    }
    store.flush().unwrap();
    let widened = store.gc_controller_tick();
    assert_eq!(widened, 2, "priming pressure failed to widen the pool");

    // Park one cycle mid-flight, right after its first victim committed.
    let gate = PhaseGate::new(&[GcPhase::Relocated], 1);
    store.set_gc_phase_hook(Some(gate.hook()));
    let paused = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || store.clean_now().unwrap())
    };
    let token = gate.wait_paused_at(GcPhase::Relocated, 1)[0];
    assert!(
        store.stats().claimed_victims > 0 || store.stats().quarantined_segments > 0,
        "paused cycle holds no claims/quarantine — the test primed too little garbage"
    );

    // Relieve the pressure with the *other* slot while the first cycle is parked:
    // delete a large slice of the data (guaranteed reclaimable space), then clean
    // until the pool is back above the trigger, then force low-pressure ticks until
    // the controller scales down.
    let doomed: Vec<u64> = model.keys().copied().filter(|p| p % 2 == 1).collect();
    for p in doomed {
        store.delete(p).unwrap();
        model.remove(&p);
    }
    store.flush().unwrap();
    for _ in 0..(4 * config.num_segments) {
        if store.free_segments() > config.cleaning.trigger_free_segments {
            break;
        }
        store.clean_now().unwrap();
    }
    assert!(
        store.free_segments() > config.cleaning.trigger_free_segments,
        "the second slot could not relieve the pressure"
    );
    let mut scaled = store.gc_target_cycles();
    for _ in 0..8 {
        scaled = store.gc_controller_tick();
        if scaled == 1 {
            break;
        }
    }
    assert_eq!(
        scaled, 1,
        "target did not scale down while a cycle was in flight"
    );

    // The in-flight cycle is untouched by the decision: release it and let it finish.
    gate.release(token, GcPhase::Relocated);
    paused.join().unwrap();
    store.set_gc_phase_hook(None);

    store.flush().unwrap();
    let stats = store.stats();
    assert_eq!(
        stats.claimed_victims, 0,
        "scale-down stranded victim claims"
    );
    assert_eq!(
        stats.quarantined_segments, 0,
        "scale-down stranded quarantine entries"
    );
    assert_eq!(store.live_pages(), model.len());
    for (&p, &version) in &model {
        assert_eq!(
            decode(&store.get(p).unwrap().unwrap()),
            (p, version),
            "page {p} damaged across the mid-flight scale-down"
        );
    }

    // And the store still cleans and recovers *exactly*: with no checkpoint taken, the
    // cleaner re-emits every delete fact it relocates, so scan recovery reproduces the
    // model as a set — nothing lost, nothing resurrected.
    store.clean_now().unwrap();
    store.flush().unwrap();
    let Ok(inner) = Arc::try_unwrap(store) else {
        panic!("sole handle expected");
    };
    let recovered = LogStore::recover_with_device(config, inner.into_device()).unwrap();
    assert_eq!(
        recovered.live_pages(),
        model.len(),
        "recovery must reproduce the model exactly"
    );
    for (&p, &version) in &model {
        assert_eq!(
            decode(&recovered.get(p).unwrap().expect("page lost in recovery")),
            (p, version),
            "page {p} wrong after recovery"
        );
    }
}

#[test]
fn env_overrides_configure_the_cleaner_mode() {
    // Exercised through the injectable lookup rather than std::env::set_var: mutating
    // the process environment would race getenv calls on concurrently running test
    // threads (UB on common libcs). `with_env_overrides` is the same logic over
    // std::env::var.
    let vars = |pairs: &'static [(&'static str, &'static str)]| {
        move |name: &str| {
            pairs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| v.to_string())
        }
    };

    let c = StoreConfig::paper_default().with_overrides_from(vars(&[
        ("LSS_CLEANER_MODE", "adaptive"),
        ("LSS_CLEANER_MIN_CYCLES", "2"),
        ("LSS_CLEANER_MAX_CYCLES", "6"),
    ]));
    assert!(c.cleaner_mode.is_adaptive());
    assert_eq!(c.min_cleaner_cycles(), 2);
    assert_eq!(c.max_cleaner_cycles(), 6);
    c.validate().unwrap();

    // Bounds alone imply adaptive; out-of-range values clamp to what validation
    // accepts.
    let c = StoreConfig::paper_default().with_overrides_from(vars(&[
        ("LSS_CLEANER_MIN_CYCLES", "0"),
        ("LSS_CLEANER_MAX_CYCLES", "99"),
    ]));
    assert!(c.cleaner_mode.is_adaptive());
    assert_eq!(c.min_cleaner_cycles(), 1);
    assert_eq!(c.max_cleaner_cycles(), 8);
    c.validate().unwrap();

    // An explicit `fixed` wins over stale bound variables.
    let c = StoreConfig::paper_default().with_overrides_from(vars(&[
        ("LSS_CLEANER_MODE", "fixed"),
        ("LSS_CLEANER_MIN_CYCLES", "2"),
        ("LSS_CLEANER_MAX_CYCLES", "6"),
    ]));
    assert!(!c.cleaner_mode.is_adaptive());

    // The stress knobs ride through the same path.
    let c = StoreConfig::paper_default().with_overrides_from(vars(&[
        ("LSS_WRITE_STREAMS", "7"),
        ("LSS_CLEANER_THREADS", "5"),
    ]));
    assert_eq!(c.write_streams, 7);
    assert_eq!(c.cleaner_threads, 5);
    assert!(!c.cleaner_mode.is_adaptive());
}
