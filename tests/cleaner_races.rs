//! Deterministic cleaner-race tests: concurrent cleaning cycles on disjoint victims,
//! interleaved with foreground traffic at **exact phase boundaries**, plus a
//! crash-recovery matrix that kills the store mid-cycle at every phase with two cycles
//! in flight.
//!
//! The store exposes a test hook ([`LogStore::set_gc_phase_hook`]) invoked at every
//! phase boundary of every cleaning cycle with no store lock held; the
//! [`common::PhaseGate`] harness (shared with `tests/gc_controller.rs`) turns it into
//! a controllable barrier — tests pause any cycle at any boundary
//! (`Claimed → VictimRead → Relocated → Sealed → Synced`), run foreground writers or
//! a second cycle while it is parked, and then release it. This is the `GatedDevice`
//! idea from `tests/concurrency.rs` generalised from "block inside one device read"
//! to "block at any point of the cycle state machine".

use lss::core::device::{DeviceGeometry, MemDevice, SegmentDevice};
use lss::core::policy::PolicyKind;
use lss::core::{Error, GcPhase, LogStore, Result, SegmentId, SharedLogStore, StoreConfig};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

mod common;
use common::{apply_env_concurrency, PhaseGate};

/// Self-describing page payload: `[page_id, version, filler...]`.
fn payload(page: u64, version: u64, len: usize) -> Vec<u8> {
    let mut v = vec![(page ^ version) as u8; len.max(16)];
    v[..8].copy_from_slice(&page.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode(bytes: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(bytes[..8].try_into().unwrap()),
        u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
    )
}

/// A cloneable device with a kill switch: once killed, every write and sync fails (the
/// process "dies" mid-cycle) while the durable contents survive for recovery, which
/// only needs reads.
#[derive(Clone)]
struct KillSwitchDevice {
    inner: Arc<MemDevice>,
    dead: Arc<AtomicBool>,
}

impl KillSwitchDevice {
    fn new(segment_bytes: usize, num_segments: usize) -> Self {
        Self {
            inner: Arc::new(MemDevice::new(segment_bytes, num_segments)),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
    }

    fn revive_for_recovery(&self) {
        self.dead.store(false, Ordering::SeqCst);
    }
}

impl SegmentDevice for KillSwitchDevice {
    fn geometry(&self) -> DeviceGeometry {
        self.inner.geometry()
    }
    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
        self.inner.read_segment(seg)
    }
    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
        self.inner.read_range(seg, offset, len)
    }
    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Error::Io(std::io::Error::other("killed mid-cycle")));
        }
        self.inner.write_segment(seg, image)
    }
    fn sync(&self) -> Result<()> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Error::Io(std::io::Error::other("killed mid-cycle")));
        }
        self.inner.sync()
    }
    fn segment_writes(&self) -> u64 {
        self.inner.segment_writes()
    }
}

/// A store primed with reclaimable segments: `pages` pages at version 1, a scrambled
/// half overwritten to version 2 (checkerboarding the sealed segments so cleaning must
/// actually relocate), everything flushed. Returns the expected page → version model.
fn prime_store(store: &LogStore, config: &StoreConfig, pages: u64) -> HashMap<u64, u64> {
    let mut model = HashMap::new();
    for p in 0..pages {
        store.put(p, &payload(p, 1, config.page_bytes)).unwrap();
        model.insert(p, 1);
    }
    for n in 0..pages / 2 {
        let p = (n * 11 + 3) % pages;
        store.put(p, &payload(p, 2, config.page_bytes)).unwrap();
        model.insert(p, 2);
    }
    // A few deletions, so the matrix also proves tombstoned pages are never
    // resurrected by a half-finished cycle.
    for p in (0..pages).step_by(17) {
        store.delete(p).unwrap();
        model.remove(&p);
    }
    store.flush().unwrap();
    model
}

fn assert_matches_model(store: &LogStore, model: &HashMap<u64, u64>, pages: u64, ctx: &str) {
    assert_eq!(store.live_pages(), model.len(), "{ctx}: live-page count");
    for p in 0..pages {
        match model.get(&p) {
            Some(&version) => {
                let got = store
                    .get(p)
                    .unwrap()
                    .unwrap_or_else(|| panic!("{ctx}: page {p} lost"));
                assert_eq!(decode(&got), (p, version), "{ctx}: page {p}");
            }
            None => assert!(
                store.get(p).unwrap().is_none(),
                "{ctx}: deleted page {p} resurrected"
            ),
        }
    }
}

fn race_config(cleaner_threads: usize) -> StoreConfig {
    let mut config = StoreConfig::small_for_tests()
        .with_policy(PolicyKind::Greedy)
        .with_cleaner_threads(cleaner_threads);
    // Plenty of headroom so foreground writes issued while cycles are paused never
    // trigger inline cleaning (which would wait for a cycle slot held by a paused
    // cycle and deadlock the test).
    config.num_segments = 128;
    config
}

/// Two cycles run concurrently, pause after reading their first victim, and their
/// claimed victim sets are provably disjoint; foreground reads and writes complete
/// while both are parked, and no data is lost or corrupted by the overlap.
#[test]
fn concurrent_cycles_claim_disjoint_victims_while_foreground_progresses() {
    let config = race_config(2);
    let store = Arc::new(LogStore::open_in_memory(config.clone()).unwrap());
    let pages = 512u64;
    let model = prime_store(&store, &config, pages);

    let gate = PhaseGate::new(&[GcPhase::VictimRead], 2);
    store.set_gc_phase_hook(Some(gate.hook()));

    let cleaners: Vec<_> = (0..2)
        .map(|_| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.clean_now().unwrap())
        })
        .collect();
    let tokens = gate.wait_paused_at(GcPhase::VictimRead, 2);

    // Both cycles are mid-flight with victims claimed: the claims must be disjoint.
    let a: HashSet<SegmentId> = gate.victims_of(tokens[0]).into_iter().collect();
    let b: HashSet<SegmentId> = gate.victims_of(tokens[1]).into_iter().collect();
    assert!(!a.is_empty() && !b.is_empty(), "a cycle claimed nothing");
    assert!(
        a.is_disjoint(&b),
        "cycles claimed overlapping victims: {a:?} vs {b:?}"
    );

    // Foreground traffic completes while two cycles are provably in flight.
    let probe = *model.keys().next().unwrap();
    assert_eq!(
        decode(&store.get(probe).unwrap().unwrap()).0,
        probe,
        "read stalled behind paused cycles"
    );
    store
        .put(9_999, &payload(9_999, 7, config.page_bytes))
        .expect("write stalled behind paused cycles");

    gate.open_wide();
    let mut freed = 0;
    for c in cleaners {
        freed += c.join().unwrap().segments_freed();
    }
    assert!(freed > 0, "two gated cycles reclaimed nothing");

    store.set_gc_phase_hook(None);
    assert_matches_model(&store, &model, pages, "after concurrent cycles");
    assert_eq!(decode(&store.get(9_999).unwrap().unwrap()), (9_999, 7));
}

/// A user rewrite that lands between a cycle's victim read and its commit must win:
/// the cycle's staged copy fails the page-table compare-and-swap and is abandoned.
#[test]
fn user_rewrite_during_paused_cycle_beats_the_relocation() {
    let config = race_config(2);
    let store = Arc::new(LogStore::open_in_memory(config.clone()).unwrap());
    let pages = 512u64;
    let model = prime_store(&store, &config, pages);

    let gate = PhaseGate::new(&[GcPhase::VictimRead], 1);
    store.set_gc_phase_hook(Some(gate.hook()));
    let cleaner = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || store.clean_now().unwrap())
    };
    gate.wait_paused_at(GcPhase::VictimRead, 1);

    // The cycle has read images of claimed victims but committed nothing. Overwrite
    // every live page so every staged relocation it goes on to attempt is stale.
    let mut rewritten = HashMap::new();
    for p in model.keys() {
        store.put(*p, &payload(*p, 50, config.page_bytes)).unwrap();
        rewritten.insert(*p, 50u64);
    }
    gate.open_wide();
    cleaner.join().unwrap();
    store.set_gc_phase_hook(None);

    assert_matches_model(&store, &rewritten, pages, "after racing rewrites");
    store.flush().unwrap();
    assert_matches_model(&store, &rewritten, pages, "after flush");
}

/// Walk one cycle through every phase boundary: at each pause a second cycle runs to
/// completion and foreground reads/writes complete, proving no boundary holds a lock
/// that foreground traffic or another cycle needs.
#[test]
fn every_phase_boundary_overlaps_a_full_cycle_and_foreground_traffic() {
    for phase in [
        GcPhase::Claimed,
        GcPhase::VictimRead,
        GcPhase::Relocated,
        GcPhase::Sealed,
        GcPhase::Synced,
    ] {
        let config = race_config(2);
        let store = Arc::new(LogStore::open_in_memory(config.clone()).unwrap());
        let pages = 512u64;
        let mut model = prime_store(&store, &config, pages);

        let gate = PhaseGate::new(&[phase], 1);
        store.set_gc_phase_hook(Some(gate.hook()));
        let paused = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.clean_now().unwrap())
        };
        let token = gate.wait_paused_at(phase, 1)[0];

        // A full second cycle completes while the first is parked at `phase`...
        let report = store.clean_now().unwrap();
        if phase != GcPhase::Synced {
            // (once the first cycle is fully done, the second may find nothing left)
            assert!(
                report.segments_freed() > 0 || report.pages_moved == 0,
                "phase {phase:?}: second cycle wedged"
            );
        }
        // ...and so does foreground traffic.
        let probe = *model.keys().next().unwrap();
        assert!(store.get(probe).unwrap().is_some());
        store
            .put(10_000, &payload(10_000, 3, config.page_bytes))
            .unwrap();
        model.insert(10_000, 3);

        gate.release(token, phase);
        paused.join().unwrap();
        store.set_gc_phase_hook(None);
        store.flush().unwrap();
        assert_matches_model(&store, &model, 10_001, &format!("phase {phase:?}"));
    }
}

/// The crash-recovery matrix: with **two concurrent cycles** parked at each phase
/// boundary (victims claimed / images read / first victim's relocations committed /
/// outputs sealed / synced-but-not-reaped), the device dies, the process "restarts",
/// and recovery from the device image alone must reproduce exactly the flushed state —
/// no lost pages, no resurrected pages, for any combination of cycle progress.
#[test]
fn crash_matrix_recovers_flushed_state_at_every_phase_with_two_cycles() {
    for phase in [
        GcPhase::Claimed,
        GcPhase::VictimRead,
        GcPhase::Relocated,
        GcPhase::Sealed,
        GcPhase::Synced,
    ] {
        let config = race_config(2);
        let device = KillSwitchDevice::new(config.segment_bytes, config.num_segments);
        let store =
            Arc::new(LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap());
        let pages = 512u64;
        let model = prime_store(&store, &config, pages);

        let gate = PhaseGate::new(&[phase], 2);
        store.set_gc_phase_hook(Some(gate.hook()));
        let cleaners: Vec<_> = (0..2)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || store.clean_now())
            })
            .collect();
        // Both cycles in flight at the same boundary. (At `Relocated` each cycle has
        // committed its first victim's relocations but not the rest — the "half the
        // relocations committed" point of the matrix.)
        let _tokens = gate.wait_paused_at(phase, 2);

        // Kill the device, then let the cycles run into the dead device and finish
        // however they finish (errors are expected and fine — the store is doomed).
        device.kill();
        gate.open_wide();
        for c in cleaners {
            let _ = c.join().unwrap();
        }
        drop(store); // the process dies; all in-memory state is gone

        // Restart: recovery reads the durable image only.
        device.revive_for_recovery();
        let recovered =
            LogStore::recover_with_device(config.clone(), Box::new(device.clone())).unwrap();
        assert_matches_model(
            &recovered,
            &model,
            pages,
            &format!("crash at {phase:?} with 2 cycles"),
        );
        // The recovered store must still write, clean and flush.
        recovered
            .put(0, &payload(0, 77, config.page_bytes))
            .unwrap();
        recovered.clean_now().unwrap();
        recovered.flush().unwrap();
        assert_eq!(decode(&recovered.get(0).unwrap().unwrap()), (0, 77));
    }
}

/// Delete-heavy extension of the crash matrix: most of the store is tombstoned, so
/// the two parked cycles are mid-way through relocating victims whose entries are
/// dominated by delete records and stale copies of deleted pages. Killing the device
/// at every phase boundary must never let recovery revive an ever-deleted page —
/// whether the cycle died before re-emitting a tombstone, after staging it in an
/// unsealed output, or after the output was sealed and synced but the victim not yet
/// reaped (both the delete fact and its doomed older copies coexist on the device).
#[test]
fn delete_heavy_crash_matrix_never_resurrects_a_deleted_page() {
    for phase in [
        GcPhase::Claimed,
        GcPhase::VictimRead,
        GcPhase::Relocated,
        GcPhase::Sealed,
        GcPhase::Synced,
    ] {
        let config = race_config(2);
        let device = KillSwitchDevice::new(config.segment_bytes, config.num_segments);
        let store =
            Arc::new(LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap());
        let pages = 512u64;

        // Every page gets an old copy, a third get a newer copy, and then two thirds
        // of the store is deleted: the sealed segments the greedy cleaner will claim
        // are mostly dead space, stale copies of deleted pages, and tombstones.
        let mut model = HashMap::new();
        let mut deleted_ever = HashSet::new();
        for p in 0..pages {
            store.put(p, &payload(p, 1, config.page_bytes)).unwrap();
            model.insert(p, 1u64);
        }
        for p in (0..pages).step_by(3) {
            store.put(p, &payload(p, 2, config.page_bytes)).unwrap();
            model.insert(p, 2);
        }
        for p in 0..pages {
            if p % 3 != 1 {
                store.delete(p).unwrap();
                model.remove(&p);
                deleted_ever.insert(p);
            }
        }
        store.flush().unwrap();

        let gate = PhaseGate::new(&[phase], 2);
        store.set_gc_phase_hook(Some(gate.hook()));
        let cleaners: Vec<_> = (0..2)
            .map(|_| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || store.clean_now())
            })
            .collect();
        let _tokens = gate.wait_paused_at(phase, 2);

        device.kill();
        gate.open_wide();
        for c in cleaners {
            let _ = c.join().unwrap();
        }
        drop(store);

        device.revive_for_recovery();
        let recovered =
            LogStore::recover_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let ctx = format!("delete-heavy crash at {phase:?}");
        for &p in &deleted_ever {
            assert!(
                recovered.get(p).unwrap().is_none(),
                "{ctx}: ever-deleted page {p} live after reopen"
            );
        }
        assert_matches_model(&recovered, &model, pages, &ctx);

        // A deleted page must also stay dead through post-recovery cleaning.
        recovered.clean_now().unwrap();
        recovered.flush().unwrap();
        assert_matches_model(&recovered, &model, pages, &format!("{ctx}, after clean"));
    }
}

/// Flake-catcher: a background cleaner pool (LSS_CLEANER_THREADS, default 2) races
/// several writers over a hot overwrite workload; every page must hold its final
/// version and live accounting must match. Run 10× in release by the CI stress job.
#[test]
fn cleaner_pool_races_writers_without_losing_data() {
    let mut config = apply_env_concurrency(
        StoreConfig::small_for_tests()
            .with_policy(PolicyKind::Mdc)
            .with_cleaner_threads(2)
            .with_gc_read_pool(2),
    );
    config.num_segments = 128;
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());

    let writers = 4u64;
    let pages_per_writer = 120u64;
    let rounds = 30u64;
    let mut handles = Vec::new();
    for w in 0..writers {
        let store = store.clone();
        let len = config.page_bytes;
        handles.push(std::thread::spawn(move || {
            for round in 1..=rounds {
                for i in 0..pages_per_writer {
                    let i = (i * 13 + round) % pages_per_writer;
                    let page = w * 10_000 + i;
                    store.put(page, &payload(page, round, len)).unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    store.flush().unwrap();
    let stats = store.stats();
    assert!(stats.cleaning_cycles > 0, "the pool never cleaned");
    for w in 0..writers {
        for i in 0..pages_per_writer {
            let page = w * 10_000 + i;
            let got = store
                .get(page)
                .unwrap()
                .unwrap_or_else(|| panic!("page {page} lost under cleaner-pool races"));
            assert_eq!(decode(&got), (page, rounds));
        }
    }
    assert_eq!(store.live_pages() as u64, writers * pages_per_writer);
}

/// Temperature-classed streams change *placement*, never the commit protocol: with two
/// classes, survivors the cycle routes to the hot output stream still lose to user
/// writes that land while the cycle is parked after its victim read. The page-table
/// compare-and-swap commits exactly one winner — the user's newer version — and the
/// staged hot-stream copy is abandoned.
#[test]
fn hot_stream_survivor_and_racing_user_write_commit_exactly_one_winner() {
    let config = race_config(2).with_gc_temperature_classes(2);
    let store = Arc::new(LogStore::open_in_memory(config.clone()).unwrap());
    let pages = 512u64;
    let mut model = prime_store(&store, &config, pages);

    // Make a fifth of the live pages measurably hot: with classes=2 every page with
    // non-zero sketch heat classifies into the hot stream, and these have the most.
    let hot: Vec<u64> = {
        let mut h: Vec<u64> = model.keys().copied().filter(|p| p % 5 == 0).collect();
        h.sort_unstable();
        h
    };
    assert!(!hot.is_empty());
    for _ in 0..8 {
        for &p in &hot {
            store.put(p, &payload(p, 3, config.page_bytes)).unwrap();
            model.insert(p, 3);
        }
    }
    store.flush().unwrap();

    let gate = PhaseGate::new(&[GcPhase::VictimRead], 1);
    store.set_gc_phase_hook(Some(gate.hook()));
    let cleaner = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || store.clean_now().unwrap())
    };
    gate.wait_paused_at(GcPhase::VictimRead, 1);

    // The cycle holds read images of its victims (hot pages included) but has
    // committed nothing. Land a user write on every hot page: each staged hot-stream
    // relocation of those pages is now stale and must fail its CAS.
    for &p in &hot {
        store.put(p, &payload(p, 60, config.page_bytes)).unwrap();
        model.insert(p, 60);
    }
    gate.open_wide();
    cleaner.join().unwrap();
    store.set_gc_phase_hook(None);

    // Exactly one winner per page: the user's version 60 everywhere it raced, and no
    // page lost or duplicated anywhere else.
    assert_matches_model(&store, &model, pages, "after hot-stream race");
    store.flush().unwrap();
    assert_matches_model(&store, &model, pages, "after flush");

    // The classed path really is live in this configuration: keep checkerboarding
    // dead space and cleaning until a cycle relocates survivors into the hot
    // (non-zero) class. The gated cycle above may legitimately have claimed only
    // fully-dead victims (greedy picks the emptiest), so this drives ordinary,
    // ungated cycles until one carries hot survivors.
    // The sort-buffer separation groups the hot pages into segments that die
    // *together*, so as long as writes keep flowing there is an endless supply of
    // fully-dead victims and greedy never claims a survivor-bearing segment. Stop
    // writing and drain that backlog with repeated forced cycles: once it is gone,
    // greedy must claim the checkerboarded half-dead segments, whose survivors all
    // carry non-zero sketch heat and therefore route through the hot stream.
    for attempt in 0usize.. {
        let stats = store.stats();
        let hot_class_pages: u64 = stats.gc_class_pages_written.iter().skip(1).sum();
        if hot_class_pages > 0 {
            break;
        }
        assert!(
            attempt < 40,
            "no survivor was ever routed through a hot output stream: per-class {:?}, \
             gc_pages_written {}, cycles {}, cleaned {}",
            stats.gc_class_pages_written,
            stats.gc_pages_written,
            stats.cleaning_cycles,
            stats.segments_cleaned
        );
        store.clean_now().unwrap();
    }
    assert_matches_model(&store, &model, pages, "after driving hot-class cycles");
}

/// `gc_temperature_classes = 1` is inert: a gated cleaning run on the default config
/// and one with the knob set explicitly to 1 claim identical victims, free the same
/// segments, write the same GC pages, record zero promotions/demotions, and account
/// every GC byte to class 0.
#[test]
fn single_class_gated_run_matches_default_exactly() {
    let run = |config: StoreConfig| {
        let store = Arc::new(LogStore::open_in_memory(config.clone()).unwrap());
        let pages = 512u64;
        let model = prime_store(&store, &config, pages);
        let gate = PhaseGate::new(&[GcPhase::Claimed], 1);
        store.set_gc_phase_hook(Some(gate.hook()));
        let cleaner = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.clean_now().unwrap())
        };
        let tokens = gate.wait_paused_at(GcPhase::Claimed, 1);
        let victims = gate.victims_of(tokens[0]);
        gate.open_wide();
        let report = cleaner.join().unwrap();
        store.set_gc_phase_hook(None);
        assert_matches_model(&store, &model, pages, "single-class gated run");
        (victims, report.segments_freed(), store.stats())
    };

    let (victims_default, freed_default, stats_default) = run(race_config(1));
    let (victims_explicit, freed_explicit, stats_explicit) =
        run(race_config(1).with_gc_temperature_classes(1));

    assert_eq!(victims_default, victims_explicit, "victim claims diverged");
    assert_eq!(freed_default, freed_explicit);
    assert_eq!(
        stats_default.gc_pages_written,
        stats_explicit.gc_pages_written
    );
    assert_eq!(
        stats_default.segments_cleaned,
        stats_explicit.segments_cleaned
    );
    assert_eq!(
        stats_default.cleaning_cycles,
        stats_explicit.cleaning_cycles
    );

    for stats in [&stats_default, &stats_explicit] {
        assert_eq!(
            stats.gc_class_promotions, 0,
            "classes=1 must never reclassify"
        );
        assert_eq!(
            stats.gc_class_demotions, 0,
            "classes=1 must never reclassify"
        );
        assert!(
            stats.gc_class_pages_written.len() <= 1,
            "classes=1 accounted GC writes outside class 0: {:?}",
            stats.gc_class_pages_written
        );
        let class0: u64 = stats.gc_class_pages_written.iter().sum();
        assert_eq!(
            class0, stats.gc_pages_written,
            "class-0 accounting must cover every GC page"
        );
        assert!(
            stats.gc_class_segments.is_empty(),
            "classes=1 must not tag segments"
        );
    }
}
