//! Tests for the page-heat sketch and the batch temperature classifier
//! (`lss::core::freq::{PageHeat, classify_heat}`): lazy exponential decay,
//! saturation at the packed-count ceiling, epoch-wraparound behaviour, and
//! consistency under concurrent recorders.

use lss::core::freq::{classify_heat, PageHeat, MAX_TEMPERATURE_CLASSES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Basic recording
// ---------------------------------------------------------------------------

#[test]
fn heat_counts_writes_within_an_epoch() {
    // A huge decay interval so no epoch advance happens during the test.
    let heat = PageHeat::new(1024, u64::MAX);
    assert_eq!(heat.heat(7), 0, "untouched page must read 0");
    for _ in 0..25 {
        heat.record(7);
    }
    assert_eq!(heat.heat(7), 25);
    // An unrelated page that doesn't collide reads 0. Probe a few candidates —
    // the sketch hashes page ids, so pick one whose slot differs.
    let other = (1..10_000)
        .find(|&p| heat.heat(p) == 0)
        .expect("some page must land in an empty slot");
    assert_eq!(heat.heat(other), 0);
}

#[test]
fn slot_count_is_a_clamped_power_of_two() {
    assert_eq!(PageHeat::new(1, 16).slot_count(), 1024);
    assert_eq!(PageHeat::new(3000, 16).slot_count(), 4096);
    assert_eq!(PageHeat::new(usize::MAX, 16).slot_count(), 1 << 16);
    let sized = PageHeat::for_physical_pages(100_000);
    assert_eq!(sized.slot_count(), 1 << 16);
}

// ---------------------------------------------------------------------------
// Decay
// ---------------------------------------------------------------------------

/// Drive the global epoch forward by `epochs` full decay intervals using writes to a
/// sacrificial page.
fn advance_epochs(heat: &PageHeat, interval: u64, epochs: u64, filler_page: u64) {
    for _ in 0..interval * epochs {
        heat.record(filler_page);
    }
}

#[test]
fn heat_halves_once_per_elapsed_epoch() {
    let interval = 64;
    let heat = PageHeat::new(1024, interval);
    // Find a page that does not share a slot with the filler page we'll use to
    // advance the epoch, so the filler's own count can't pollute the reading.
    let filler = 0u64;
    let page = (1..10_000)
        .find(|&p| {
            heat.record(p);
            let distinct = heat.heat(filler) == 0;
            // Reset our probe write by checking against a fresh sketch is overkill;
            // one stray count doesn't change the halving arithmetic below.
            distinct
        })
        .expect("some page must not collide with the filler");
    for _ in 0..31 {
        heat.record(page); // 32 total with the probe write above
    }
    assert_eq!(heat.heat(page), 32);

    advance_epochs(&heat, interval, 1, filler);
    assert_eq!(heat.heat(page), 16, "one epoch halves the count once");
    advance_epochs(&heat, interval, 2, filler);
    assert_eq!(heat.heat(page), 4, "two more epochs quarter it");
    advance_epochs(&heat, interval, 3, filler);
    assert_eq!(heat.heat(page), 0, "a stale page fades to nothing");
}

#[test]
fn decay_is_applied_lazily_on_the_next_record() {
    let interval = 32;
    let heat = PageHeat::new(1024, interval);
    let filler = 0u64;
    let page = (1..10_000)
        .find(|&p| {
            heat.record(p);
            heat.heat(filler) == 0
        })
        .expect("non-colliding page");
    for _ in 0..15 {
        heat.record(page); // 16 with the probe
    }
    advance_epochs(&heat, interval, 1, filler);
    // Touching the page after the epoch advance folds the decay in *then* adds one.
    heat.record(page);
    assert_eq!(heat.heat(page), 16 / 2 + 1);
}

// ---------------------------------------------------------------------------
// Saturation / overflow
// ---------------------------------------------------------------------------

#[test]
fn counts_saturate_instead_of_wrapping_into_the_epoch_bits() {
    // The packed slot layout is (16-bit epoch | 48-bit count). A count pinned at the
    // ceiling must stay there rather than carrying into the epoch field (which would
    // teleport the slot's epoch and corrupt decay).
    let heat = PageHeat::new(1024, u64::MAX);
    let page = 42u64;
    for _ in 0..1000 {
        heat.record(page);
    }
    let observed = heat.heat(page);
    assert_eq!(observed, 1000);
    // We can't loop 2^48 times; instead verify the invariant the ceiling protects:
    // heat() never exceeds the 48-bit count mask no matter what's in the slot.
    assert!(observed < (1u64 << 48));
}

#[test]
fn epoch_counter_wraparound_does_not_resurrect_heat() {
    // Slot epochs are 16-bit; `decayed` uses wrapping subtraction, so a slot written
    // `d < 48` epochs ago decays correctly even across the u16 wrap, and anything
    // older reads 0. Simulate by recording, then racing the epoch far forward.
    let interval = 8;
    let heat = PageHeat::new(1024, interval);
    let filler = 0u64;
    let page = (1..10_000)
        .find(|&p| {
            heat.record(p);
            heat.heat(filler) == 0
        })
        .expect("non-colliding page");
    for _ in 0..63 {
        heat.record(page);
    }
    // 60 epochs > 48 count bits: the count must shift to exactly 0, never underflow
    // or wrap back up to a huge value.
    advance_epochs(&heat, interval, 60, filler);
    assert_eq!(heat.heat(page), 0);
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

#[test]
fn concurrent_recorders_lose_no_counts_without_decay() {
    // With decay effectively off, record() is a pure saturating increment: N threads
    // x M records on the same page must read back exactly N*M (CAS loop loses
    // nothing). This is the strongest consistency claim the sketch makes.
    let threads = 8usize;
    let per_thread = 20_000u64;
    let heat = Arc::new(PageHeat::new(1024, u64::MAX));
    let page = 99u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let heat = Arc::clone(&heat);
            scope.spawn(move || {
                for _ in 0..per_thread {
                    heat.record(page);
                }
            });
        }
    });
    assert_eq!(heat.heat(page), threads as u64 * per_thread);
}

#[test]
fn concurrent_recorders_with_decay_stay_bounded_and_ranked() {
    // With decay on, exact counts are timing-dependent, but two invariants are not:
    // (a) a page's heat never exceeds the total writes it received, and (b) a page
    // written 16x as often as another still reads hotter afterwards.
    let threads = 8usize;
    let per_thread = 8_000u64;
    let heat = Arc::new(PageHeat::new(1024, 1024));
    let hot = 11u64;
    // Pick a cold page in a different slot than the hot one.
    heat.record(hot);
    let cold = (12..10_000)
        .find(|&p| heat.heat(p) == 0)
        .expect("non-colliding cold page");
    let cold_writes = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let heat = Arc::clone(&heat);
            let cold_writes = Arc::clone(&cold_writes);
            scope.spawn(move || {
                for i in 0..per_thread {
                    heat.record(hot);
                    if i % 16 == 0 {
                        heat.record(cold);
                        cold_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let (h, c) = (heat.heat(hot), heat.heat(cold));
    assert!(h <= threads as u64 * per_thread + 1);
    assert!(c <= cold_writes.load(Ordering::Relaxed));
    assert!(
        h > c,
        "16x hotter page must still rank hotter after concurrent decay (hot {h}, cold {c})"
    );
}

// ---------------------------------------------------------------------------
// classify_heat
// ---------------------------------------------------------------------------

#[test]
fn classify_single_class_and_empty_batches() {
    assert!(classify_heat(&[], 4).is_empty());
    assert_eq!(classify_heat(&[5, 0, 9], 1), vec![0, 0, 0]);
    assert_eq!(classify_heat(&[5, 0, 9], 0), vec![0, 0, 0]);
}

#[test]
fn classify_zero_heat_is_always_cold_and_ranks_are_equal_depth() {
    let heats = [0, 1, 2, 3, 4, 5, 6, 7, 8, 0];
    let classes = classify_heat(&heats, 3);
    assert_eq!(classes[0], 0);
    assert_eq!(classes[9], 0);
    // 8 warm pages over classes {1, 2}: the 4 coolest get 1, the 4 hottest get 2.
    assert_eq!(&classes[1..5], &[1, 1, 1, 1]);
    assert_eq!(&classes[5..9], &[2, 2, 2, 2]);
    assert!(classes
        .iter()
        .all(|&c| (c as usize) < MAX_TEMPERATURE_CLASSES));
}

#[test]
fn classify_is_deterministic_under_ties() {
    let heats = [3, 3, 3, 3];
    let a = classify_heat(&heats, 3);
    let b = classify_heat(&heats, 3);
    assert_eq!(a, b);
    // Ties break by position, so equal heats are split but stably so.
    let mut sorted = a.clone();
    sorted.sort_unstable();
    assert_eq!(
        a, sorted,
        "positional tie-break keeps equal heats in rank order"
    );
}

#[test]
fn classify_adapts_to_any_heat_scale() {
    // Relative quantiles, not absolute thresholds: scaling all heats by 1000 must not
    // change the classes.
    let small = [0u64, 1, 2, 10, 50];
    let big: Vec<u64> = small.iter().map(|&h| h * 1000).collect();
    assert_eq!(classify_heat(&small, 4), classify_heat(&big, 4));
}
