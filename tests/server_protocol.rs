//! Wire-protocol conformance tests against a live in-process server, each pinned to
//! the docs/PROTOCOL.md section it enforces: fatal framing errors close the
//! connection with no reply (§8 — torn frames, oversized lengths §3.1, bad CRC §4,
//! bad magic §3.2, bad version §3.3), recoverable errors reply and keep the
//! connection (§3.4 unknown opcode, §5 malformed payloads), pipelined replies
//! correlate by id (§7), and a seeded frame-mutation fuzz pass (honouring
//! `LSS_STRESS_SEED`) checks the server survives arbitrary corruption.

mod common;

use common::stress_seed_or;
use lss::btree::kv::{KvOptions, KvStore};
use lss::client::{Client, ClientError, ClientOptions};
use lss::core::{LogStore, StoreConfig};
use lss::server::protocol::{
    self, encode_frame, read_frame, write_frame, Request, Response, ERR_BAD_REQUEST,
    ERR_UNSUPPORTED_OPCODE, MIN_FRAME_LEN, OP_PUT, RESPONSE_BIT, STATUS_OK, VERSION,
};
use lss::server::{Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// An in-process server on an ephemeral port plus the shared store handle.
fn start_server() -> (Server, Arc<KvStore>) {
    let store = LogStore::open_in_memory(StoreConfig::small_for_tests()).unwrap();
    let kv = Arc::new(
        KvStore::open_with(
            store,
            KvOptions {
                group_commit_window_us: 100,
                ..KvOptions::default()
            },
        )
        .unwrap(),
    );
    let server = Server::start(Arc::clone(&kv), "127.0.0.1:0", ServerConfig::default()).unwrap();
    (server, kv)
}

/// A raw socket with a read timeout so a buggy server cannot hang the test.
fn raw_conn(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Drive one request/reply exchange over a raw socket, proving the connection works.
fn roundtrip_put(stream: &mut TcpStream, corr_id: u64) {
    let mut payload = Vec::new();
    Request::Put {
        key: b"alive".to_vec(),
        value: b"yes".to_vec(),
        durable: false,
    }
    .encode_payload(&mut payload);
    write_frame(stream, OP_PUT, corr_id, &payload).unwrap();
    stream.flush().unwrap();
    let frame = read_frame(stream, protocol::MAX_FRAME_BYTES)
        .unwrap()
        .expect("reply expected");
    assert_eq!(frame.opcode, OP_PUT | RESPONSE_BIT);
    assert_eq!(frame.corr_id, corr_id);
    assert_eq!(frame.payload, vec![STATUS_OK]);
}

/// Send raw bytes, half-close, and assert the server closes with **no reply**
/// (PROTOCOL.md §8: fatal framing errors tear the connection down silently).
fn expect_silent_close(server: &Server, bytes: &[u8]) {
    let mut stream = raw_conn(server);
    stream.write_all(bytes).unwrap();
    stream.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(
        rest.is_empty(),
        "fatal frame must not be answered, got {} reply bytes",
        rest.len()
    );
}

/// A well-formed PUT frame to corrupt in the fatal-error tests.
fn valid_put_frame(corr_id: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    Request::Put {
        key: b"k".to_vec(),
        value: b"v".to_vec(),
        durable: false,
    }
    .encode_payload(&mut payload);
    let mut frame = Vec::new();
    encode_frame(&mut frame, OP_PUT, corr_id, &payload);
    frame
}

#[test]
fn torn_frame_closes_without_reply() {
    let (server, _kv) = start_server();
    let frame = valid_put_frame(1);
    // Every cut point inside the frame is a torn frame (§8); cut 0 is a clean EOF.
    for cut in [1, 4, 5, frame.len() - 1] {
        expect_silent_close(&server, &frame[..cut]);
    }
    server.shutdown();
}

#[test]
fn oversized_and_undersized_lengths_close_without_reply() {
    let (server, _kv) = start_server();
    // §3.1: length above the 16 MiB bound is fatal before any allocation...
    let huge = (protocol::MAX_FRAME_BYTES + 1).to_le_bytes();
    expect_silent_close(&server, &huge);
    // ...and a length below the 16-byte body minimum is equally fatal.
    let tiny = (MIN_FRAME_LEN - 1).to_le_bytes();
    expect_silent_close(&server, &tiny);
    server.shutdown();
}

#[test]
fn bad_crc_magic_and_version_close_without_reply() {
    let (server, _kv) = start_server();
    // §4: flip one payload bit, leave the CRC — mismatch is fatal.
    let mut frame = valid_put_frame(2);
    let mid = frame.len() / 2;
    frame[mid] ^= 0x01;
    expect_silent_close(&server, &frame);
    // §3.2: wrong magic (CRC recomputed so only the magic is at fault).
    let mut payload = Vec::new();
    Request::Flush.encode_payload(&mut payload);
    let mut frame = Vec::new();
    encode_frame(&mut frame, Request::Flush.opcode(), 3, &payload);
    frame[4] ^= 0xFF; // first magic byte, after the 4-byte length prefix
    patch_crc(&mut frame);
    expect_silent_close(&server, &frame);
    // §3.3: unsupported version.
    let mut frame = Vec::new();
    encode_frame(&mut frame, Request::Flush.opcode(), 4, &payload);
    frame[6] = VERSION + 1;
    patch_crc(&mut frame);
    expect_silent_close(&server, &frame);
    server.shutdown();
}

/// Recompute the trailing CRC over magic..payload after a test mutated the body.
fn patch_crc(frame: &mut [u8]) {
    let body_end = frame.len() - 4;
    let crc = lss::core::util::crc32c(&frame[4..body_end]);
    frame[body_end..].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn unknown_opcode_replies_and_connection_survives() {
    let (server, _kv) = start_server();
    let mut stream = raw_conn(&server);
    // §3.4: opcode 0x7F is unknown but the frame is well-formed → error reply,
    // connection stays open.
    write_frame(&mut stream, 0x7F, 9, &[]).unwrap();
    stream.flush().unwrap();
    let frame = read_frame(&mut stream, protocol::MAX_FRAME_BYTES)
        .unwrap()
        .expect("recoverable errors are answered");
    assert_eq!(frame.opcode, 0x7F | RESPONSE_BIT);
    assert_eq!(frame.corr_id, 9);
    assert_eq!(frame.payload, vec![ERR_UNSUPPORTED_OPCODE]);
    roundtrip_put(&mut stream, 10);
    server.shutdown();
}

#[test]
fn malformed_payload_replies_and_connection_survives() {
    let (server, _kv) = start_server();
    let mut stream = raw_conn(&server);
    // §5.2: a PUT payload cut short mid-string is ERR_BAD_REQUEST, not fatal.
    write_frame(&mut stream, OP_PUT, 20, &[0x00, 0x05, 0x00, 0x00]).unwrap();
    // §5.1: trailing bytes after a GET payload are equally rejected.
    let mut payload = Vec::new();
    Request::Get { key: b"k".to_vec() }.encode_payload(&mut payload);
    payload.push(0xEE);
    write_frame(&mut stream, protocol::OP_GET, 21, &payload).unwrap();
    stream.flush().unwrap();
    for corr in [20u64, 21] {
        let frame = read_frame(&mut stream, protocol::MAX_FRAME_BYTES)
            .unwrap()
            .expect("recoverable errors are answered");
        assert_eq!(frame.corr_id, corr);
        assert_eq!(frame.payload, vec![ERR_BAD_REQUEST]);
    }
    roundtrip_put(&mut stream, 22);
    server.shutdown();
}

#[test]
fn pipelined_replies_correlate_by_id() {
    let (server, kv) = start_server();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
    // §7: replies come back in *completion* order (the executor runs requests on
    // several workers), so the only valid way to pair them is the correlation id.
    // Batch 1: a pipelined window of PUTs.
    let mut put_corrs = std::collections::HashSet::new();
    for i in 0..64u32 {
        let corr = client
            .send(&Request::Put {
                key: format!("p:{i:03}").into_bytes(),
                value: format!("v{i}").into_bytes(),
                durable: i % 4 == 0,
            })
            .unwrap();
        assert!(put_corrs.insert(corr), "correlation ids must be unique");
    }
    for (corr, reply) in client.drain().unwrap() {
        assert!(put_corrs.remove(&corr), "reply with unknown corr id {corr}");
        assert!(matches!(reply, Response::Put), "corr {corr}: {reply:?}");
    }
    assert!(put_corrs.is_empty(), "unanswered PUTs: {put_corrs:?}");
    // Batch 2: pipelined GETs over the now-committed keys; each reply's corr id
    // must map back to exactly the value its key holds.
    let mut want_by_corr = std::collections::HashMap::new();
    for i in 0..64u32 {
        let corr = client
            .send(&Request::Get {
                key: format!("p:{i:03}").into_bytes(),
            })
            .unwrap();
        want_by_corr.insert(corr, format!("v{i}").into_bytes());
    }
    for (corr, reply) in client.drain().unwrap() {
        let want = want_by_corr.remove(&corr).expect("unknown corr id");
        match reply {
            Response::Get(got) => assert_eq!(got.as_deref(), Some(&want[..])),
            other => panic!("corr {corr}: expected GET reply, got {other:?}"),
        }
    }
    assert!(want_by_corr.is_empty(), "unanswered GETs");
    assert_eq!(kv.len(), 64);
    server.shutdown();
}

#[test]
fn fuzzed_frames_never_kill_the_server() {
    let (server, _kv) = start_server();
    let seed = stress_seed_or(0x1552_F00D);
    let mut rng = StdRng::seed_from_u64(seed);
    for round in 0..200u64 {
        // Start from a valid frame of a random opcode and payload...
        let opcode = [
            protocol::OP_GET,
            OP_PUT,
            protocol::OP_DELETE,
            protocol::OP_SCAN,
            protocol::OP_FLUSH,
            protocol::OP_STATS,
        ][rng.gen_range(0..6usize)];
        let payload: Vec<u8> = (0..rng.gen_range(0..64usize))
            .map(|_| rng.gen::<u32>() as u8)
            .collect();
        let mut frame = Vec::new();
        encode_frame(&mut frame, opcode, round, &payload);
        // ...then corrupt it: byte flips, truncation, or garbage append.
        match rng.gen_range(0..4u32) {
            0 => {
                for _ in 0..rng.gen_range(1..4usize) {
                    let at = rng.gen_range(0..frame.len());
                    frame[at] ^= 1 << rng.gen_range(0..8u32);
                }
            }
            1 => frame.truncate(rng.gen_range(0..frame.len())),
            2 => frame.extend((0..rng.gen_range(1..32usize)).map(|_| rng.gen::<u32>() as u8)),
            _ => {} // occasionally send it clean
        }
        let mut stream = raw_conn(&server);
        // The peer may already have torn the connection down mid-write; that is a
        // pass, not a failure — the property under test is server survival.
        if stream.write_all(&frame).is_ok() {
            let _ = stream.flush();
        }
        let _ = stream.shutdown(Shutdown::Write);
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
    // The server survived 200 corrupt connections: a fresh client still works.
    let mut stream = raw_conn(&server);
    roundtrip_put(&mut stream, 999);
    server.shutdown();
}

#[test]
fn shutdown_mid_request_unblocks_clients() {
    let (server, kv) = start_server();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect_with(
        &addr,
        ClientOptions {
            retry_mutations: false,
            connect_attempts: 1,
            ..ClientOptions::default()
        },
    )
    .unwrap();
    // Establish a durable prefix whose survival shutdown must not threaten.
    for i in 0..16u32 {
        client.put(format!("pre:{i}").as_bytes(), b"acked").unwrap();
    }
    // Fill the pipe with in-flight requests, then shut the server down from another
    // thread while replies are still streaming.
    for i in 0..512u32 {
        if client
            .send(&Request::Put {
                key: format!("mid:{i:04}").into_bytes(),
                value: b"racing".to_vec(),
                durable: true,
            })
            .is_err()
        {
            break;
        }
    }
    let stopper = std::thread::spawn(move || {
        server.shutdown();
        server
    });
    // Draining must terminate — with replies, an error, or a clean close — never hang.
    let drained = client.drain();
    let server = stopper.join().unwrap();
    match drained {
        Ok(replies) => assert!(replies
            .iter()
            .all(|(_, r)| matches!(r, Response::Put | Response::Err { .. }))),
        Err(ClientError::Io(_))
        | Err(ClientError::Disconnected)
        | Err(ClientError::Server { .. }) => {}
        Err(other) => panic!("unexpected drain failure: {other}"),
    }
    drop(server);
    // Every write acked before the shutdown began is still in the store.
    for i in 0..16u32 {
        assert_eq!(
            kv.get(format!("pre:{i}").as_bytes()).unwrap().as_deref(),
            Some(&b"acked"[..]),
            "acked write lost across shutdown"
        );
    }
}
