//! Group-commit semantics for the paged KV layer ([`lss::btree::kv::KvStore`]):
//!
//! * `group_commit_window_us = 0` (the default) must be behaviour-identical to the
//!   pre-group-commit per-call flip — proven by an A/B run of the same deterministic
//!   trace against both configurations, comparing contents *and* commit statistics;
//! * with a wide window, concurrent `flush` calls must batch into fewer superblock
//!   flips than calls, every caller's mutations must be durable once its call
//!   returns `Ok`, and a failed flip must surface the error to *every* caller of the
//!   batched generation — a rider must never report durability its leader failed to
//!   deliver.

mod common;

use common::{apply_env_concurrency, CrashPointDevice};
use lss::btree::kv::{KvOptions, KvStore};
use lss::core::policy::PolicyKind;
use lss::core::{Error, LogStore, StoreConfig};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn config() -> StoreConfig {
    let mut c = apply_env_concurrency(StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc));
    c.num_segments = 192;
    c
}

fn open_with_window(window_us: u64) -> KvStore {
    KvStore::open_with(
        LogStore::open_in_memory(config()).unwrap(),
        KvOptions {
            group_commit_window_us: window_us,
            ..Default::default()
        },
    )
    .unwrap()
}

/// A deterministic single-threaded trace: puts, overwrites, deletes, periodic
/// flushes — the shape whose per-call commit behaviour window 0 must reproduce.
fn run_trace(kv: &KvStore) {
    for round in 0..4u32 {
        for i in 0..120u32 {
            kv.put(
                format!("k{i:04}").as_bytes(),
                format!("r{round}-v{i}").as_bytes(),
            )
            .unwrap();
        }
        for i in (0..120u32).step_by(9) {
            kv.delete(format!("k{i:04}").as_bytes()).unwrap();
        }
        kv.flush().unwrap();
    }
}

/// Acceptance gate: `group_commit_window_us = 0` is the per-call commit, bit for bit
/// in everything observable — same contents, one flip per flush call, zero riders,
/// identical index/value write accounting and epoch sequence as the default open.
#[test]
fn window_zero_is_identical_to_per_call_commit() {
    let default_kv = KvStore::open(LogStore::open_in_memory(config()).unwrap()).unwrap();
    let zero_kv = open_with_window(0);
    run_trace(&default_kv);
    run_trace(&zero_kv);

    let a = default_kv.stats();
    let b = zero_kv.stats();
    assert_eq!(a.epoch, b.epoch, "epoch sequences diverged");
    assert_eq!(
        a.superblock_commits, b.superblock_commits,
        "flip counts diverged"
    );
    assert_eq!(a.flush_calls, b.flush_calls);
    assert_eq!(
        b.flush_calls, b.superblock_commits,
        "window 0 must flip once per flush call"
    );
    assert_eq!(b.group_commit_riders, 0, "window 0 must never batch");
    assert_eq!(a.group_commit_riders, 0);
    assert_eq!(a.puts, b.puts);
    assert_eq!(a.deletes, b.deletes);
    assert_eq!(a.keys, b.keys);
    assert_eq!(
        a.index_pages_written, b.index_pages_written,
        "index write traces diverged"
    );
    assert_eq!(a.index_bytes_written, b.index_bytes_written);
    assert_eq!(a.value_bytes_written, b.value_bytes_written);

    let scan_a = default_kv.range(b"", b"~~~~~~").unwrap();
    let scan_b = zero_kv.range(b"", b"~~~~~~").unwrap();
    assert_eq!(scan_a, scan_b, "contents diverged");
}

/// Concurrent flush calls with a wide window batch into fewer flips than calls, and
/// every caller's data is durable (restart-proof) once its call returned `Ok`.
#[test]
fn concurrent_flushes_batch_and_stay_durable() {
    const FLUSHERS: u32 = 4;
    let kv = Arc::new(open_with_window(100_000));
    for i in 0..200u32 {
        kv.put(format!("seed{i:04}").as_bytes(), b"base").unwrap();
    }
    kv.flush().unwrap();
    let base = kv.stats();

    // Each thread writes its marker and then demands durability; the window gives
    // every call time to join the leader's generation.
    std::thread::scope(|scope| {
        for t in 0..FLUSHERS {
            let kv = kv.clone();
            scope.spawn(move || {
                kv.put(
                    format!("marker{t}").as_bytes(),
                    format!("from-t{t}").as_bytes(),
                )
                .unwrap();
                kv.flush().unwrap();
            });
        }
    });

    let stats = kv.stats();
    let calls = stats.flush_calls - base.flush_calls;
    let flips = stats.superblock_commits - base.superblock_commits;
    let riders = stats.group_commit_riders - base.group_commit_riders;
    assert_eq!(calls, FLUSHERS as u64);
    assert!(
        flips < calls,
        "{calls} concurrent flush calls took {flips} flips — nothing batched"
    );
    assert!(riders >= 1, "no call rode a generation");
    assert_eq!(flips + riders, calls, "every call either leads or rides");
    assert!(stats.avg_commit_batch() > 1.0);

    // Durability: every marker survives a restart (each flush returned Ok only
    // after a superblock covering its put was committed).
    let kv = Arc::try_unwrap(kv).unwrap_or_else(|_| unreachable!("all clones joined"));
    let store = kv.into_inner();
    let cfg = store.config().clone();
    let reopened =
        KvStore::open(LogStore::recover_with_device(cfg, store.into_device()).unwrap()).unwrap();
    for t in 0..FLUSHERS {
        assert_eq!(
            reopened
                .get(format!("marker{t}").as_bytes())
                .unwrap()
                .expect("marker lost after restart")
                .as_ref(),
            format!("from-t{t}").as_bytes()
        );
    }
}

/// A failed flip must fail *every* caller of the batched generation: a rider
/// returning `Ok` while the leader's barriers never reached the device would be a
/// silent durability lie.
#[test]
fn riders_observe_the_leaders_failure() {
    let cfg = config();
    let device = CrashPointDevice::new(cfg.segment_bytes, cfg.num_segments);
    let store = LogStore::open_with_device(cfg.clone(), Box::new(device.clone())).unwrap();
    let kv = Arc::new(
        KvStore::open_with(
            store,
            KvOptions {
                group_commit_window_us: 100_000,
                ..Default::default()
            },
        )
        .unwrap(),
    );
    for i in 0..150u32 {
        kv.put(format!("c{i:04}").as_bytes(), b"committed").unwrap();
    }
    kv.flush().unwrap();

    for i in 0..150u32 {
        kv.put(format!("u{i:04}").as_bytes(), b"uncommitted")
            .unwrap();
    }
    device.fail_after(0); // every further device write fails: the flip cannot land
    let failures = AtomicU32::new(0);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let kv = kv.clone();
            let failures = &failures;
            scope.spawn(move || {
                let Err(e) = kv.flush() else { return };
                // Leader and riders surface the *same* wrapped source error, so
                // callers matching on the underlying variant behave identically
                // in either role (the device failure is an I/O error here).
                assert!(
                    matches!(&e, Error::GroupCommitFailed(src) if matches!(**src, Error::Io(_))),
                    "expected the generation's shared source error, got {e:?}"
                );
                failures.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(
        failures.load(Ordering::Relaxed),
        3,
        "a flush call reported durability for an epoch the device never saw"
    );

    // The committed epoch survives: heal, reopen, only the pre-failure state exists.
    let kv = Arc::try_unwrap(kv).unwrap_or_else(|_| unreachable!("all clones joined"));
    drop(kv.into_inner());
    device.heal();
    let recovered = LogStore::recover_with_device(cfg, Box::new(device.clone())).unwrap();
    let reopened = KvStore::open(recovered).unwrap();
    assert_eq!(reopened.len(), 150);
    assert_eq!(
        reopened.get(b"c0000").unwrap().unwrap().as_ref(),
        b"committed"
    );
    assert!(reopened.get(b"u0000").unwrap().is_none());
}
