//! Concurrency and crash-consistency tests for the read/write/clean pipeline.
//!
//! These are the acceptance tests of the concurrent-store refactor:
//!
//! * a multi-threaded stress test (writer threads + reader threads + the background
//!   cleaner) asserting that every page reads back its last flushed value under every
//!   [`PolicyKind`];
//! * a determinised proof that reads and writes complete **while a cleaning cycle is in
//!   flight** — a gated device blocks the cleaner inside its victim read until a
//!   foreground `get` and `put` have completed, which would deadlock if cleaning still
//!   ran inline under a store-wide lock;
//! * crash-consistency: a device that starts failing writes mid-clean loses nothing
//!   that was flushed, verified through `recover_with_device`.

use lss::core::device::{DeviceGeometry, MemDevice, SegmentDevice};
use lss::core::policy::PolicyKind;
use lss::core::{Error, LogStore, Result, SegmentId, SharedLogStore, StoreConfig};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

mod common;
use common::apply_env_concurrency;

/// Self-describing page payload: `[page_id, version, filler...]`, so readers can detect
/// torn or misdirected reads no matter when they interleave with writers.
fn payload(page: u64, version: u64, len: usize) -> Vec<u8> {
    let mut v = vec![(page ^ version) as u8; len.max(16)];
    v[..8].copy_from_slice(&page.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode_payload(bytes: &[u8]) -> (u64, u64) {
    let page = u64::from_le_bytes(bytes[..8].try_into().unwrap());
    let version = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    (page, version)
}

/// N writers + N readers + the background cleaner, for every policy: readers must never
/// observe a payload belonging to a different page, and after the writers join every
/// page must hold its final version.
#[test]
fn stress_readers_writers_and_background_cleaner_under_every_policy() {
    for kind in PolicyKind::ALL {
        let mut config = apply_env_concurrency(StoreConfig::small_for_tests().with_policy(kind));
        config.num_segments = 128;
        config.sort_buffer_segments = 2;
        let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());

        let writers = 3u64;
        let pages_per_writer = 150u64;
        let rounds = 24u64;
        let payload_len = config.page_bytes;

        // Preload version 0 of every page so readers always find something.
        for w in 0..writers {
            for i in 0..pages_per_writer {
                let page = w * 10_000 + i;
                store.put(page, &payload(page, 0, payload_len)).unwrap();
            }
        }
        store.flush().unwrap();

        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..writers {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for round in 1..=rounds {
                    for i in 0..pages_per_writer {
                        // Scramble the order so victim segments decay into live/dead
                        // checkerboards and the cleaner has real work.
                        let i = (i * 7 + round) % pages_per_writer;
                        let page = w * 10_000 + i;
                        store.put(page, &payload(page, round, payload_len)).unwrap();
                    }
                }
            }));
        }
        let mut readers = Vec::new();
        for r in 0..writers {
            let store = store.clone();
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut reads = 0u64;
                let mut n = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let w = (r + n) % writers;
                    let page = w * 10_000 + (n * 13) % pages_per_writer;
                    n += 1;
                    let got = store
                        .get(page)
                        .expect("read failed under concurrency")
                        .expect("preloaded page disappeared");
                    let (got_page, version) = decode_payload(&got);
                    assert_eq!(
                        got_page, page,
                        "policy {kind}: read a foreign page's payload"
                    );
                    assert!(
                        version <= rounds,
                        "policy {kind}: impossible version {version}"
                    );
                    reads += 1;
                }
                reads
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let mut total_reads = 0;
        for r in readers {
            total_reads += r.join().unwrap();
        }
        assert!(total_reads > 0, "policy {kind}: readers never ran");

        store.flush().unwrap();
        let stats = store.stats();
        assert!(
            stats.cleaning_cycles > 0,
            "policy {kind}: cleaning never ran"
        );
        for w in 0..writers {
            for i in 0..pages_per_writer {
                let page = w * 10_000 + i;
                let got = store
                    .get(page)
                    .unwrap()
                    .unwrap_or_else(|| panic!("policy {kind}: page {page} lost after stress run"));
                let (got_page, version) = decode_payload(&got);
                assert_eq!(got_page, page, "policy {kind}");
                assert_eq!(
                    version, rounds,
                    "policy {kind}: page {page} does not hold its final version"
                );
            }
        }
    }
}

/// Regression test for the drain visibility window: a `put` that has returned must be
/// readable immediately and forever after, even while the sort buffer is being drained
/// into segments. (An earlier drain design removed entries from the buffer before their
/// page-table entries existed, so a freshly acknowledged page could transiently read
/// back as `None`.)
#[test]
fn acknowledged_writes_never_transiently_disappear() {
    let mut config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
    config.num_segments = 256;
    config.sort_buffer_segments = 2;
    // The visibility guarantee must hold per stream: probe it with the write path
    // sharded wider than the default.
    config.write_streams = 4;
    let config = apply_env_concurrency(config);
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());
    let high_water = Arc::new(AtomicU64::new(0)); // pages < high_water are acknowledged
                                                  // Distinct fresh pages (the sharpest probe for the visibility window), sized to a
                                                  // 0.6 fill so pure growth fits the device.
    let total = config.logical_pages_for_fill_factor(0.6) as u64;

    let writer = {
        let store = store.clone();
        let high_water = Arc::clone(&high_water);
        let len = config.page_bytes;
        std::thread::spawn(move || {
            for p in 0..total {
                store.put(p, &payload(p, 1, len)).unwrap();
                high_water.store(p + 1, Ordering::Release);
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let store = store.clone();
            let high_water = Arc::clone(&high_water);
            std::thread::spawn(move || {
                let mut n = r;
                loop {
                    let hw = high_water.load(Ordering::Acquire);
                    if hw >= total {
                        break;
                    }
                    if hw == 0 {
                        continue;
                    }
                    let page = (n * 31) % hw;
                    n += 1;
                    let got = store.get(page).unwrap().unwrap_or_else(|| {
                        panic!("acknowledged page {page} read back as None (hw {hw})")
                    });
                    assert_eq!(decode_payload(&got).0, page);
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    for p in 0..total {
        assert!(store.get(p).unwrap().is_some(), "page {p} lost");
    }
}

/// A device wrapper that blocks the *cleaner's* whole-segment read (only the cleaner
/// reads whole segments on a live store) until the test releases it — pinning a cleaning
/// cycle in flight at a deterministic point.
struct GatedDevice {
    inner: MemDevice,
    armed: AtomicBool,
    cleaner_blocked: (Mutex<bool>, Condvar),
    release: (Mutex<bool>, Condvar),
}

impl GatedDevice {
    fn new(inner: MemDevice) -> Self {
        Self {
            inner,
            armed: AtomicBool::new(false),
            cleaner_blocked: (Mutex::new(false), Condvar::new()),
            release: (Mutex::new(false), Condvar::new()),
        }
    }

    fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Wait until the cleaner has entered its gated victim read.
    fn wait_for_cleaner_blocked(&self) {
        let (lock, cv) = &self.cleaner_blocked;
        let mut blocked = lock.lock().unwrap();
        while !*blocked {
            blocked = cv.wait(blocked).unwrap();
        }
    }

    /// Let the blocked cleaner continue.
    fn release_cleaner(&self) {
        let (lock, cv) = &self.release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
}

impl SegmentDevice for GatedDevice {
    fn geometry(&self) -> DeviceGeometry {
        self.inner.geometry()
    }

    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
        if self.armed.swap(false, Ordering::SeqCst) {
            {
                let (lock, cv) = &self.cleaner_blocked;
                *lock.lock().unwrap() = true;
                cv.notify_all();
            }
            let (lock, cv) = &self.release;
            let mut released = lock.lock().unwrap();
            while !*released {
                released = cv.wait(released).unwrap();
            }
        }
        self.inner.read_segment(seg)
    }

    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
        self.inner.read_range(seg, offset, len)
    }

    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
        self.inner.write_segment(seg, image)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }

    fn segment_writes(&self) -> u64 {
        self.inner.segment_writes()
    }
}

/// The acceptance criterion of the refactor, made deterministic: a `get` and a `put`
/// both complete while a cleaning cycle is provably in flight (the cleaner is parked
/// inside its victim read and only un-parked *after* the foreground operations return).
/// Under the old single-mutex design this test deadlocks.
#[test]
fn reads_and_writes_complete_while_cleaning_is_in_flight() {
    let mut config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
    config.num_segments = 128; // plenty of headroom: nothing triggers cleaning by itself
    let device = Arc::new(GatedDevice::new(MemDevice::new(
        config.segment_bytes,
        config.num_segments,
    )));

    /// Forwarder so the test can keep a handle on the gate while the store owns "the
    /// device".
    struct DeviceHandle(Arc<GatedDevice>);
    impl SegmentDevice for DeviceHandle {
        fn geometry(&self) -> DeviceGeometry {
            self.0.geometry()
        }
        fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
            self.0.read_segment(seg)
        }
        fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
            self.0.read_range(seg, offset, len)
        }
        fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
            self.0.write_segment(seg, image)
        }
        fn sync(&self) -> Result<()> {
            self.0.sync()
        }
        fn segment_writes(&self) -> u64 {
            self.0.segment_writes()
        }
    }

    let store = SharedLogStore::without_background_cleaner(
        LogStore::open_with_device(config.clone(), Box::new(DeviceHandle(Arc::clone(&device))))
            .unwrap(),
    );

    // Fill some pages and overwrite a few so the cleaner will find victims with
    // reclaimable space; flush so reads are served from the device.
    let pages = 64u64;
    for p in 0..pages {
        store.put(p, &payload(p, 0, config.page_bytes)).unwrap();
    }
    for p in 0..pages / 2 {
        store.put(p, &payload(p, 1, config.page_bytes)).unwrap();
    }
    store.flush().unwrap();

    // Park the next whole-segment read (the victim read of the cleaning cycle).
    device.arm();
    let cleaner = {
        let store = store.clone();
        std::thread::spawn(move || store.clean_now().unwrap())
    };
    device.wait_for_cleaner_blocked();

    // Cleaning is now provably in flight. Reads and writes must still complete —
    // if either needed the cleaning cycle to finish first, this would deadlock
    // (the cleaner is only released further down).
    let got = store
        .get(3)
        .unwrap()
        .expect("page must be readable during cleaning");
    let (page, version) = decode_payload(&got);
    assert_eq!((page, version), (3, 1));
    store
        .put(999, &payload(999, 7, config.page_bytes))
        .expect("writes must complete during cleaning");
    assert_eq!(decode_payload(&store.get(999).unwrap().unwrap()), (999, 7));

    device.release_cleaner();
    let report = cleaner.join().unwrap();
    assert!(
        report.segments_freed() > 0,
        "the gated cycle should have cleaned something"
    );

    // Nothing was lost or corrupted by cleaning concurrently with the foreground ops.
    for p in 0..pages {
        let expected_version = if p < pages / 2 { 1 } else { 0 };
        let got = store.get(p).unwrap().unwrap();
        assert_eq!(decode_payload(&got), (p, expected_version));
    }
}

/// A cloneable in-memory device whose write path can be switched off to simulate the
/// process dying mid-clean, while the underlying "disk" contents survive for recovery.
#[derive(Clone)]
struct CrashDevice {
    inner: Arc<MemDevice>,
    fail_writes: Arc<AtomicBool>,
    writes_until_failure: Arc<AtomicU32>,
}

impl CrashDevice {
    fn new(segment_bytes: usize, num_segments: usize) -> Self {
        Self {
            inner: Arc::new(MemDevice::new(segment_bytes, num_segments)),
            fail_writes: Arc::new(AtomicBool::new(false)),
            writes_until_failure: Arc::new(AtomicU32::new(u32::MAX)),
        }
    }

    /// Allow `n` more segment writes, then fail every subsequent one.
    fn fail_after(&self, n: u32) {
        self.writes_until_failure.store(n, Ordering::SeqCst);
        self.fail_writes.store(true, Ordering::SeqCst);
    }

    fn heal(&self) {
        self.fail_writes.store(false, Ordering::SeqCst);
        self.writes_until_failure.store(u32::MAX, Ordering::SeqCst);
    }
}

impl SegmentDevice for CrashDevice {
    fn geometry(&self) -> DeviceGeometry {
        self.inner.geometry()
    }
    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
        self.inner.read_segment(seg)
    }
    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
        self.inner.read_range(seg, offset, len)
    }
    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
        if self.fail_writes.load(Ordering::SeqCst) {
            let remaining = self.writes_until_failure.load(Ordering::SeqCst);
            if remaining == 0 {
                return Err(Error::Io(std::io::Error::other(
                    "simulated crash: device gone mid-clean",
                )));
            }
            self.writes_until_failure
                .store(remaining - 1, Ordering::SeqCst);
        }
        self.inner.write_segment(seg, image)
    }
    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
    fn segment_writes(&self) -> u64 {
        self.inner.segment_writes()
    }
}

/// A transient device failure during a seal must not let a *later* flush report
/// durability falsely: the failed image is parked as a wounded seal and retried, so the
/// first successful flush after the device heals really has everything on disk —
/// proven by recovering from the device image alone.
#[test]
fn failed_seal_is_retried_and_later_flush_is_truthful() {
    let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
    let device = CrashDevice::new(config.segment_bytes, config.num_segments);
    let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();

    // Enough pages that the flush must seal several segments.
    let pages = 4 * config.pages_per_segment() as u64;
    for p in 0..pages {
        store.put(p, &payload(p, 1, config.page_bytes)).unwrap();
    }

    // Device down: the flush must fail, not fake success.
    device.fail_after(0);
    assert!(
        store.flush().is_err(),
        "flush must surface the seal failure"
    );
    // While wounded, the data is still readable from the in-memory builders.
    for p in 0..pages {
        assert_eq!(
            decode_payload(&store.get(p).unwrap().unwrap()),
            (p, 1),
            "page {p} unreadable while its seal is wounded"
        );
    }

    // Device heals: the next flush retries the parked images and succeeds.
    device.heal();
    store.flush().expect("flush after heal must succeed");

    // The durability claim must hold from the device image alone.
    drop(store);
    let recovered = LogStore::recover_with_device(config, Box::new(device.clone())).unwrap();
    assert_eq!(recovered.live_pages() as u64, pages);
    for p in 0..pages {
        assert_eq!(
            decode_payload(&recovered.get(p).unwrap().unwrap()),
            (p, 1),
            "page {p} lost despite a successful post-heal flush"
        );
    }
}

/// Kill the device partway through a cleaning cycle (some GC output segments written,
/// then everything fails), "restart", and recover from the device alone: every page
/// flushed before the crash must read back its flushed value.
#[test]
fn crash_mid_clean_recovers_all_flushed_data() {
    // Try several failure points so the crash lands in different phases of the cycle
    // (before any GC write, mid GC output stream, during the final seals).
    for failure_budget in [0u32, 1, 2, 3] {
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
        let device = CrashDevice::new(config.segment_bytes, config.num_segments);
        let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();

        // Fill half the store, overwrite a scrambled *subset* (every other page) so
        // sealed segments hold a live/dead checkerboard — cleaning must then actually
        // relocate pages (device writes) rather than just freeing dead segments — and
        // flush: this is the durable state the crash must not lose.
        let pages = config.logical_pages_for_fill_factor(0.5) as u64;
        for p in 0..pages {
            store.put(p, &payload(p, 1, config.page_bytes)).unwrap();
        }
        for n in 0..pages / 2 {
            let p = (n * 11 + 3) % pages;
            store.put(p, &payload(p, 2, config.page_bytes)).unwrap();
        }
        store.flush().unwrap();

        // Writes after the flush are volatile by contract; make some so recovery has
        // something to (correctly) lose.
        for p in 0..16u64 {
            store.put(p, &payload(p, 99, config.page_bytes)).unwrap();
        }

        // The "crash": the device stops accepting writes partway through cleaning.
        device.fail_after(failure_budget);
        let clean_result = store.clean_now();
        if failure_budget < 2 {
            // With this little write budget the cycle cannot complete its GC output
            // stream; it must surface the I/O error rather than losing pages silently.
            assert!(
                clean_result.is_err(),
                "budget {failure_budget}: cleaning should have hit the dead device"
            );
        }
        drop(store); // the process dies; in-memory state is gone

        // Restart: recover from the device image alone.
        device.heal();
        let recovered =
            LogStore::recover_with_device(config.clone(), Box::new(device.clone())).unwrap();
        assert_eq!(
            recovered.live_pages() as u64,
            pages,
            "budget {failure_budget}: wrong page count after mid-clean crash"
        );
        for p in 0..pages {
            let got = recovered.get(p).unwrap().unwrap_or_else(|| {
                panic!("budget {failure_budget}: page {p} lost in mid-clean crash")
            });
            let (got_page, version) = decode_payload(&got);
            assert_eq!(got_page, p, "budget {failure_budget}");
            // Versions 1 and 2 were flushed; version 99 was written after the flush and
            // must be lost (standard LFS semantics), never half-recovered.
            assert!(
                version == 1 || version == 2,
                "budget {failure_budget}: page {p} has non-flushed version {version}"
            );
        }
        // The recovered store keeps working: writes, cleaning, reads.
        for p in 0..pages {
            recovered.put(p, &payload(p, 5, config.page_bytes)).unwrap();
        }
        recovered.flush().unwrap();
        assert_eq!(decode_payload(&recovered.get(0).unwrap().unwrap()), (0, 5));
    }
}
