//! Crash matrix for the paged KV layer: the device dies at **every possible
//! device-write boundary** of the superblock commit protocol — before barrier 1 (dirty
//! index pages), between the barriers, during the superblock flip itself and after it —
//! and reopen must always recover exactly a committed index: every key maps to its
//! committed value, deleted keys stay deleted, and no partial tree page is reachable.
//! The same sweep is run across the legacy-JSON → paged-index migration.
//!
//! The sweep works by counting segment writes with the shared
//! [`common::CrashPointDevice`]: each iteration rebuilds the same deterministic store,
//! allows `n` more writes, and kills the device; `n` ranges over one more than the
//! healthy protocol needs, so every boundary (including "never started" and "fully
//! finished") is hit.

mod common;

use common::{apply_env_concurrency, CrashPointDevice};
use lss::btree::kv::KvStore;
use lss::btree::LegacyJsonKvStore;
use lss::core::policy::PolicyKind;
use lss::core::{LogStore, StoreConfig};
use std::collections::BTreeMap;

type Model = BTreeMap<Vec<u8>, Vec<u8>>;

fn config() -> StoreConfig {
    let mut c = apply_env_concurrency(StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc));
    c.num_segments = 192;
    c
}

fn key(i: u32) -> Vec<u8> {
    format!("k{i:05}").into_bytes()
}

/// The committed phase: a mixed load with overwrites and deletions.
fn phase1(kv: &KvStore, model: &mut Model) {
    for i in 0..150u32 {
        let v = format!("p1-{i}").into_bytes();
        kv.put(&key(i), &v).unwrap();
        model.insert(key(i), v);
    }
    for i in (0..150u32).step_by(11) {
        kv.delete(&key(i)).unwrap();
        model.remove(&key(i));
    }
}

/// The epoch the crash interrupts: overwrites, fresh keys, deletions.
fn phase2(kv: &KvStore, model: &mut Model) {
    for i in (0..150u32).step_by(3) {
        let v = format!("p2-{i}").into_bytes();
        kv.put(&key(i), &v).unwrap();
        model.insert(key(i), v);
    }
    for i in 150..190u32 {
        let v = format!("p2-new-{i}").into_bytes();
        kv.put(&key(i), &v).unwrap();
        model.insert(key(i), v);
    }
    for i in (1..150u32).step_by(17) {
        kv.delete(&key(i)).unwrap();
        model.remove(&key(i));
    }
}

/// Full-state equality: key count, an exhaustive ordered scan, and point reads for
/// every key either model ever held (so resurrections of deleted keys are caught too).
fn matches_model(kv: &KvStore, model: &Model) -> bool {
    if kv.len() != model.len() {
        return false;
    }
    let scanned = kv.range(b"", b"~~~~~~~~~~").unwrap();
    if scanned.len() != model.len() {
        return false;
    }
    for ((sk, sv), (mk, mv)) in scanned.iter().zip(model.iter()) {
        if sk != mk || sv.as_ref() != mv.as_slice() {
            return false;
        }
    }
    for i in 0..200u32 {
        let got = kv.get(&key(i)).unwrap();
        if got.as_deref() != model.get(&key(i)).map(|v| v.as_slice()) {
            return false;
        }
    }
    true
}

fn assert_matches(kv: &KvStore, model: &Model, ctx: &str) {
    assert_eq!(kv.len(), model.len(), "{ctx}: key count");
    assert!(
        matches_model(kv, model),
        "{ctx}: contents diverge from model"
    );
}

/// One crash-matrix iteration: commit phase 1, run phase 2, let the committing flush
/// die after `budget` more device writes, and reopen from the surviving image.
/// Returns whether the flush reported success, the reopened store, and both models.
fn run_with_crash_at(budget: u64) -> (bool, KvStore, Model, Model) {
    let config = config();
    let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
    let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();
    let kv = KvStore::open(store).unwrap();

    let mut model1 = Model::new();
    phase1(&kv, &mut model1);
    kv.flush().unwrap(); // the committed epoch

    let mut model2 = model1.clone();
    phase2(&kv, &mut model2);

    device.fail_after(budget);
    let flushed = kv.flush();
    device.kill();
    drop(kv.into_inner()); // the "process" dies; only the device image survives

    device.heal();
    let recovered = LogStore::recover_with_device(config, Box::new(device.clone())).unwrap();
    let kv = KvStore::open(recovered).expect("reopen after crash must always succeed");
    (flushed.is_ok(), kv, model1, model2)
}

/// Kill the device at every write boundary of the commit protocol. Reopen must yield
/// exactly the pre-crash committed state or exactly the new epoch — never a blend, a
/// loss, or a partially visible tree.
#[test]
fn superblock_flip_crash_matrix_recovers_a_committed_index() {
    // Dry run: how many device writes does a healthy phase-2 commit need?
    let healthy_writes = {
        let config = config();
        let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
        let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let kv = KvStore::open(store).unwrap();
        let mut m = Model::new();
        phase1(&kv, &mut m);
        kv.flush().unwrap();
        phase2(&kv, &mut m);
        let before = device.writes();
        kv.flush().unwrap();
        device.writes() - before
    };
    assert!(
        healthy_writes >= 2,
        "the two-barrier protocol must take at least two device writes, saw {healthy_writes}"
    );

    let mut old_epoch_outcomes = 0u32;
    let mut new_epoch_outcomes = 0u32;
    for budget in 0..=healthy_writes {
        let (flush_ok, kv, model1, model2) = run_with_crash_at(budget);
        let ctx = format!("crash after {budget}/{healthy_writes} writes");
        if flush_ok {
            // The flush returned success, so the new epoch must be fully there.
            assert_matches(&kv, &model2, &ctx);
            new_epoch_outcomes += 1;
        } else {
            // The flush died: either epoch may have won (the flip may or may not have
            // reached the medium before the failure surfaced), but it must be exactly
            // one of them.
            let is_old = matches_model(&kv, &model1);
            let is_new = matches_model(&kv, &model2);
            assert!(
                is_old ^ is_new,
                "{ctx}: recovered state is {} (old={is_old}, new={is_new})",
                if is_old && is_new {
                    "ambiguous"
                } else {
                    "neither committed epoch"
                },
            );
            if is_old {
                old_epoch_outcomes += 1;
            } else {
                new_epoch_outcomes += 1;
            }
        }
        // Life goes on after recovery: a fresh epoch commits and survives a restart.
        kv.put(b"post-crash", b"alive").unwrap();
        kv.flush().unwrap();
        let store = kv.into_inner();
        let cfg = store.config().clone();
        let reopened =
            KvStore::open(LogStore::recover_with_device(cfg, store.into_device()).unwrap())
                .unwrap();
        assert_eq!(
            reopened.get(b"post-crash").unwrap().unwrap().as_ref(),
            b"alive",
            "{ctx}: post-recovery commit lost"
        );
    }
    // The sweep must actually have covered both sides of the flip.
    assert!(
        old_epoch_outcomes > 0,
        "no crash point recovered the old epoch — the sweep missed the pre-flip window"
    );
    assert!(
        new_epoch_outcomes > 0,
        "no crash point recovered the new epoch — the sweep missed the post-flip window"
    );
}

/// The same write-boundary sweep across the legacy-JSON migration: killing the device
/// anywhere inside the migrating `KvStore::open` must leave the legacy image intact,
/// and a retry after "restart" must complete the migration with identical contents.
#[test]
fn migration_crash_matrix_never_loses_the_legacy_index() {
    let config = config();

    // Deterministic legacy store builder.
    let build_legacy = |device: &CrashPointDevice| -> Model {
        let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let legacy = LegacyJsonKvStore::new(store);
        let mut model = Model::new();
        for i in 0..180u32 {
            let v = format!("legacy-{i}").into_bytes();
            legacy.put(&key(i), &v).unwrap();
            model.insert(key(i), v);
        }
        for i in (0..180u32).step_by(13) {
            legacy.delete(&key(i)).unwrap();
            model.remove(&key(i));
        }
        legacy.flush().unwrap();
        drop(legacy.into_inner());
        model
    };

    // Dry run: writes a healthy migration needs.
    let healthy_writes = {
        let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
        let model = build_legacy(&device);
        let before = device.writes();
        let store =
            LogStore::recover_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let kv = KvStore::open(store).unwrap();
        assert_matches(&kv, &model, "healthy migration");
        device.writes() - before
    };
    assert!(
        healthy_writes >= 2,
        "migration must hit the device, saw {healthy_writes}"
    );

    for budget in 0..=healthy_writes {
        let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
        let model = build_legacy(&device);
        device.fail_after(budget);
        let ctx = format!("migration crash after {budget}/{healthy_writes} writes");

        let store =
            LogStore::recover_with_device(config.clone(), Box::new(device.clone())).unwrap();
        match KvStore::open(store) {
            Ok(kv) => {
                // Migration completed within the budget: contents must be exact.
                assert_matches(&kv, &model, &ctx);
                drop(kv.into_inner());
            }
            Err(_) => {
                // Migration died mid-flight. Retry from the surviving image.
                device.heal();
                let store = LogStore::recover_with_device(config.clone(), Box::new(device.clone()))
                    .unwrap();
                let kv =
                    KvStore::open(store).unwrap_or_else(|e| panic!("{ctx}: retry failed: {e}"));
                assert_matches(&kv, &model, &format!("{ctx} (after retry)"));
                // The retried migration committed a real superblock: restart once
                // more and make sure we come back through the paged path.
                kv.put(b"post-migration", b"alive").unwrap();
                kv.flush().unwrap();
                let store = kv.into_inner();
                let cfg = store.config().clone();
                let kv =
                    KvStore::open(LogStore::recover_with_device(cfg, store.into_device()).unwrap())
                        .unwrap();
                assert_eq!(
                    kv.get(b"post-migration").unwrap().unwrap().as_ref(),
                    b"alive"
                );
            }
        }
    }
}

/// Concurrent writers racing the committing flush, then a crash: the committed index
/// must never reference a value page the flush's post-commit release reclaimed.
///
/// Regression test for a real race: `flush` used to drain the user `freed_epoch` list
/// *after* the checkpoint guard released the tree latch, so a put that slipped into
/// that window could queue a page the just-committed superblock still mapped — and
/// flush would delete it. The fix snapshots the list while the latch is held. The
/// interleaving is timing-dependent, so this hammers the window across many rounds and
/// asserts the invariant that must *always* hold after reopen: every key the committed
/// index holds is readable (no referenced-but-reclaimed value pages).
#[test]
fn concurrent_puts_racing_flush_never_corrupt_the_committed_index() {
    let config = config();
    for round in 0u64..12 {
        let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
        let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let kv = std::sync::Arc::new(KvStore::open(store).unwrap());
        for i in 0..60u32 {
            kv.put(&key(i), b"seed").unwrap();
        }
        kv.flush().unwrap();

        // Two writers overwrite hot keys (every overwrite queues the old page for
        // release) while a flusher thread commits epochs back to back — every commit
        // is a shot at the drain-after-latch-release window.
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let writers: Vec<_> = (0..2u32)
                .map(|t| {
                    let kv = kv.clone();
                    scope.spawn(move || {
                        for n in 0..600u64 {
                            let i = ((n * 7 + t as u64 * 13) % 60) as u32;
                            kv.put(&key(i), format!("t{t}-n{n}").as_bytes()).unwrap();
                        }
                    })
                })
                .collect();
            let flusher = {
                let kv = kv.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        kv.flush().unwrap();
                    }
                })
            };
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            flusher.join().unwrap();
        });

        // Crash at a round-dependent boundary of one more racing flush, then reopen.
        device.fail_after(2 + round % 5);
        let _ = kv.flush();
        device.kill();
        let kv = match std::sync::Arc::try_unwrap(kv) {
            Ok(kv) => kv,
            Err(_) => unreachable!("writers joined"),
        };
        drop(kv.into_inner());
        device.heal();
        let recovered =
            LogStore::recover_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let kv = KvStore::open(recovered)
            .unwrap_or_else(|e| panic!("round {round}: reopen failed: {e}"));
        // The invariant: index cardinality and readable keys agree exactly — a
        // committed mapping to a reclaimed page would show up as a scan/len mismatch
        // or a missing value here.
        assert_eq!(kv.len(), 60, "round {round}: key count");
        let scanned = kv.range(b"", b"~~~~~~~~").unwrap();
        assert_eq!(
            scanned.len(),
            60,
            "round {round}: a committed mapping lost its value"
        );
        for i in 0..60u32 {
            assert!(
                kv.get(&key(i)).unwrap().is_some(),
                "round {round}: key {i} referenced by the committed index but unreadable"
            );
        }
    }
}

/// A crash that loses an *uncommitted* epoch entirely (device killed before any
/// barrier) must also reclaim that epoch's leaked pages on reopen: the store's live
/// page count after the sweep equals what the committed state needs.
#[test]
fn reopen_sweep_reclaims_uncommitted_epoch_pages() {
    let config = config();
    let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
    let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();
    let kv = KvStore::open(store).unwrap();
    let mut model = Model::new();
    phase1(&kv, &mut model);
    kv.flush().unwrap();

    // An epoch's worth of churn, flushed to the device but never committed: barrier 1
    // lands, the flip does not.
    let mut model2 = model.clone();
    phase2(&kv, &mut model2);
    device.fail_after(6); // part of barrier 1 lands; the flip never does
    let _ = kv.flush();
    device.kill();
    drop(kv.into_inner());

    device.heal();
    let recovered =
        LogStore::recover_with_device(config.clone(), Box::new(device.clone())).unwrap();
    let leaked_before = recovered.live_pages();
    let kv = KvStore::open(recovered).unwrap();
    // Whichever epoch won the race to the medium, the recovered state is exactly it.
    let model = if matches_model(&kv, &model) {
        model
    } else {
        model2
    };
    assert_matches(&kv, &model, "reopen after losing an uncommitted epoch");

    // The sweep tombstones every page the committed state does not reference; after
    // one commit the tombstones are durable and the live count is exactly the
    // committed footprint (keys + reachable tree pages + the superblock slots).
    kv.flush().unwrap();
    let live_after = kv.store().live_pages();
    assert!(
        live_after <= leaked_before,
        "sweep must not grow the live set ({leaked_before} -> {live_after})"
    );
    let store = kv.into_inner();
    let cfg = store.config().clone();
    let kv =
        KvStore::open(LogStore::recover_with_device(cfg, store.into_device()).unwrap()).unwrap();
    assert_matches(&kv, &model, "after sweep + commit + restart");
}

/// Group-commit crash matrix: N writers finish their mutations, then all request
/// durability at once — with a wide `group_commit_window_us` those flush calls batch
/// into one superblock flip. The device dies at every write boundary of that batched
/// flip; reopen must land on exactly the previous epoch or exactly the batched epoch
/// (all N writers' mutations), never a partial batch — the batch is one ordinary
/// shadow epoch, so the two-barrier protocol's all-or-nothing guarantee covers it.
#[test]
fn group_commit_crash_matrix_is_all_or_nothing() {
    const GC_WRITERS: u32 = 3;
    const KEYS_EACH: u32 = 40;
    let config = config();

    let gc_key = |t: u32, i: u32| key(300 + t * 100 + i);

    // Build the store, commit a base epoch, run the writers to completion, then fire
    // `GC_WRITERS` concurrent flushes (optionally with a device-write budget).
    // Returns (flush successes, base model, batched model, riders, flips).
    let run = |device: &CrashPointDevice, budget: Option<u64>| {
        let store = LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let kv = std::sync::Arc::new(
            KvStore::open_with(
                store,
                lss::btree::kv::KvOptions {
                    // Wide window: concurrent callers reliably join one generation.
                    group_commit_window_us: 50_000,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let mut model1 = Model::new();
        phase1(&kv, &mut model1);
        kv.flush().unwrap();

        let mut model2 = model1.clone();
        std::thread::scope(|scope| {
            for t in 0..GC_WRITERS {
                let kv = kv.clone();
                scope.spawn(move || {
                    for i in 0..KEYS_EACH {
                        kv.put(&gc_key(t, i), format!("gc-w{t}-{i}").as_bytes())
                            .unwrap();
                    }
                });
            }
        });
        for t in 0..GC_WRITERS {
            for i in 0..KEYS_EACH {
                model2.insert(gc_key(t, i), format!("gc-w{t}-{i}").into_bytes());
            }
        }

        if let Some(b) = budget {
            device.fail_after(b);
        }
        let base = kv.stats();
        let oks = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..GC_WRITERS {
                let kv = kv.clone();
                let oks = &oks;
                scope.spawn(move || {
                    if kv.flush().is_ok() {
                        oks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        let stats = kv.stats();
        let riders = stats.group_commit_riders - base.group_commit_riders;
        let flips = stats.superblock_commits - base.superblock_commits;
        let kv = std::sync::Arc::try_unwrap(kv).unwrap_or_else(|_| unreachable!("all joined"));
        drop(kv.into_inner());
        (
            oks.load(std::sync::atomic::Ordering::Relaxed),
            model1,
            model2,
            riders,
            flips,
        )
    };

    // Healthy dry run: the batched flip's device-write budget, and proof that the
    // calls actually batched (riders rode, fewer flips than calls).
    let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
    let before = device.writes();
    let (oks, _, _, riders, flips) = run(&device, None);
    let healthy_writes = device.writes() - before;
    assert_eq!(oks, GC_WRITERS, "healthy group commit must succeed for all");
    assert!(
        riders >= 1,
        "no flush call rode the generation — group commit never batched"
    );
    assert!(
        flips < GC_WRITERS as u64,
        "{GC_WRITERS} calls took {flips} flips — no batching happened"
    );
    assert!(healthy_writes >= 2, "flip must hit the device");

    let mut old_epoch_outcomes = 0u32;
    let mut new_epoch_outcomes = 0u32;
    for budget in 0..=healthy_writes {
        let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
        let (oks, model1, model2, _, _) = run(&device, Some(budget));
        device.kill();
        device.heal();
        let recovered =
            LogStore::recover_with_device(config.clone(), Box::new(device.clone())).unwrap();
        let kv = KvStore::open(recovered).expect("reopen after crash must always succeed");
        let ctx = format!("group-commit crash after {budget}/{healthy_writes} writes");
        if oks > 0 {
            // Any successful flush call certifies the whole batch durable.
            assert_matches(&kv, &model2, &ctx);
            new_epoch_outcomes += 1;
        } else {
            let is_old = matches_model(&kv, &model1);
            let is_new = matches_model(&kv, &model2);
            assert!(
                is_old ^ is_new,
                "{ctx}: recovered a partial batch (old={is_old}, new={is_new})"
            );
            if is_old {
                old_epoch_outcomes += 1;
            } else {
                new_epoch_outcomes += 1;
            }
        }
    }
    assert!(
        old_epoch_outcomes > 0,
        "no crash point recovered the pre-batch epoch — sweep missed the pre-flip window"
    );
    assert!(
        new_epoch_outcomes > 0,
        "no crash point recovered the batched epoch — sweep missed the post-flip window"
    );
}
