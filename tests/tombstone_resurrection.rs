//! Permanent regression tests for the tombstone-resurrection bug.
//!
//! The original failure (stress seed 9003): the cleaner dropped a victim's tombstone
//! while an older copy of the deleted page still sat in a lower-seal-seq segment.
//! Scan recovery's newest-`(write_seq, seal_seq)` rule then revived the page from the
//! stale copy — a delete acknowledged and flushed before the crash was undone by it.
//! The fix makes the cleaner re-emit every not-provably-redundant tombstone into its
//! GC output streams (see `store::gc_driver`, phase 3a'), so the delete fact always
//! outlives the victim slot's reuse.
//!
//! Seed 9003 is pinned here forever; the CI stress loop varies the base seed per
//! iteration via `LSS_STRESS_SEED`, so this binary doubles as the replay entry point
//! for any future stress hit (`LSS_STRESS_SEED=<seed> cargo test --release --test
//! tombstone_resurrection`).

use lss::core::policy::PolicyKind;
use lss::core::{LogStore, SharedLogStore, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

mod common;

/// The seed that originally exposed the resurrection.
const REGRESSION_SEED: u64 = 9003;

fn payload(page: u64, version: u64, len: usize) -> Vec<u8> {
    let len = len.max(16);
    let mut v = vec![(page ^ version) as u8; len];
    v[..8].copy_from_slice(&page.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

/// Delete-heavy seeded workload against a store with a live background cleaner pool,
/// then full-scan recovery; every delete must stay dead and every live page must come
/// back byte-exact. Delete-heavy on purpose: a high tombstone density maximises the
/// chance that cleaning cycles relocate (and, pre-fix, dropped) delete facts while
/// older copies of the pages are still on the device.
fn run_delete_heavy_model(seed: u64, cleaner_threads: usize) {
    let mut config = common::apply_env_concurrency(
        StoreConfig::small_for_tests()
            .with_policy(PolicyKind::Mdc)
            .with_cleaner_threads(cleaner_threads)
            .with_gc_read_pool(2),
    );
    config.num_segments = 96;
    println!(
        "tombstone-resurrection model: seed={seed} cleaner_threads={} write_streams={}",
        config.cleaner_threads, config.write_streams
    );
    let max_page = config.logical_pages_for_fill_factor(0.5) as u64;
    let max_len = config.page_bytes;
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut deleted_ever: HashSet<u64> = HashSet::new();

    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..4_000u64 {
        let page = rng.gen_range(0..max_page);
        // 2-in-5 deletes keep a dense tombstone population in flight.
        if rng.gen_range(0..5u32) < 2 {
            store.delete(page).unwrap();
            model.remove(&page);
            deleted_ever.insert(page);
        } else {
            let p = payload(page, i, rng.gen_range(16..=max_len));
            store.put(page, &p).unwrap();
            model.insert(page, p);
        }
    }
    store.flush().unwrap();

    let inner = store.try_into_inner().expect("sole handle");
    let recovered = LogStore::recover_with_device(config, inner.into_device()).unwrap();
    for (&page, value) in &model {
        assert_eq!(
            recovered.get(page).unwrap().as_deref(),
            Some(value.as_slice()),
            "seed {seed}: page {page} wrong after recovery"
        );
    }
    for page in 0..max_page {
        if !model.contains_key(&page) {
            assert!(
                recovered.get(page).unwrap().is_none(),
                "seed {seed}: page {page} resurrected after recovery (deleted_ever: {})",
                deleted_ever.contains(&page)
            );
        }
    }
    assert_eq!(
        recovered.live_pages(),
        model.len(),
        "seed {seed}: recovered live-page count diverged"
    );
}

/// The pinned seed-9003 regression, at the pool sizes the original failure needed.
/// `LSS_STRESS_SEED` overrides the base seed so the CI stress loop keeps exploring.
#[test]
fn seed_9003_deletes_stay_dead_across_recovery() {
    let base = common::stress_seed_or(REGRESSION_SEED);
    for &cleaner_threads in &[1usize, 4] {
        run_delete_heavy_model(base + cleaner_threads as u64 - 1, cleaner_threads);
    }
}

/// Deterministic single-threaded reproduction of the original mechanism: an old copy
/// of a page survives in an early segment, the page is deleted, and the tombstone's
/// segment is then cleaned and its slot reused. Pre-fix, the re-used slot no longer
/// carried the delete fact and scan recovery revived the page from the old copy.
#[test]
fn cleaned_tombstone_segment_cannot_resurrect_page() {
    let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
    let store = LogStore::open_in_memory(config.clone()).unwrap();
    let len = config.page_bytes;
    let pages = config.logical_pages_for_fill_factor(0.4) as u64;

    // Old copies of every page land in the early segments.
    for p in 0..pages {
        store.put(p, &payload(p, 0, len)).unwrap();
    }
    store.flush().unwrap();

    // Delete a stripe; the tombstones land in later segments than the copies above.
    for p in (0..pages).step_by(3) {
        store.delete(p).unwrap();
    }
    store.flush().unwrap();

    // Churn the survivors so cleaning has victims on both sides of the tombstones,
    // then force cycles until the cleaner has relocated through the tombstone
    // segments (segments_cleaned keeps growing while there is anything worth moving).
    for round in 1..=6u64 {
        for p in 0..pages {
            if p % 3 != 0 {
                store.put(p, &payload(p, round, len)).unwrap();
            }
        }
        store.flush().unwrap();
        store.clean_now().unwrap();
    }
    assert!(
        store.stats().segments_cleaned > 0,
        "test must actually exercise the cleaner"
    );
    store.flush().unwrap();

    let recovered = LogStore::recover_with_device(config, store.into_device()).unwrap();
    for p in (0..pages).step_by(3) {
        assert!(
            recovered.get(p).unwrap().is_none(),
            "deleted page {p} resurrected after cleaning + scan recovery"
        );
    }
    for p in 0..pages {
        if p % 3 != 0 {
            assert_eq!(
                recovered.get(p).unwrap().as_deref(),
                Some(payload(p, 6, len).as_slice()),
                "surviving page {p} lost its newest version"
            );
        }
    }
}
