//! Integration tests spanning the workspace crates: the analytical models, the
//! simulator, the real store, the workload generators and the TPC-C/B+-tree substrates
//! must tell one consistent story — the paper's story.

use lss::analysis::hotcold::{HotColdAnalysis, HotColdSpec};
use lss::analysis::table1::uniform_emptiness;
use lss::analysis::write_amplification;
use lss::core::config::SeparationConfig;
use lss::core::policy::PolicyKind;
use lss::core::{LogStore, StoreConfig};
use lss::sim::{run_simulation, SimConfig};
use lss::tpcc::{TpccConfig, TpccDriver};
use lss::workload::{HotColdWorkload, PageWorkload, TraceWorkload, UniformWorkload};

fn small_sim(policy: PolicyKind, fill: f64) -> SimConfig {
    SimConfig::small_for_tests(policy)
        .with_num_segments(128)
        .with_fill_factor(fill)
}

fn run(policy: PolicyKind, fill: f64, mk: impl Fn(u64) -> Box<dyn PageWorkload>) -> f64 {
    let config = small_sim(policy, fill);
    let mut w = mk(config.logical_pages());
    let total = config.physical_pages() * 16;
    run_simulation(&config, w.as_mut(), total, total / 4).write_amplification
}

/// Paper §8.1 "Analysis-Simulation Agreement", uniform case: the simulator's write
/// amplification under a uniform workload tracks the Table 1 fixpoint for both greedy and
/// MDC-opt.
#[test]
fn simulation_matches_analysis_under_uniform_updates() {
    let fill = 0.8;
    let expected = write_amplification(uniform_emptiness(fill));
    for policy in [PolicyKind::Greedy, PolicyKind::MdcOpt] {
        let wamp = run(policy, fill, |pages| {
            Box::new(UniformWorkload::new(pages, 3))
        });
        let rel = (wamp - expected).abs() / expected;
        assert!(
            rel < 0.35,
            "{policy:?}: simulated Wamp {wamp:.3} vs analytical {expected:.3} (rel err {rel:.2})"
        );
    }
}

/// Paper §8.1, hot/cold case: MDC-opt approaches the Table 2 analytical optimum and the
/// paper's ordering between algorithms holds (MDC-opt <= MDC < greedy under skew).
#[test]
fn simulation_matches_hotcold_analysis_and_paper_ordering() {
    let fill = 0.8;
    let spec = HotColdSpec::from_skew_percent(90);
    let opt = HotColdAnalysis::minimum_cost(fill, spec).min_write_amplification;

    let mk = |pages| -> Box<dyn PageWorkload> {
        Box::new(HotColdWorkload::from_skew_percent(pages, 90, 9))
    };
    let greedy = run(PolicyKind::Greedy, fill, mk);
    let mdc = run(PolicyKind::Mdc, fill, mk);
    let mdc_opt = run(PolicyKind::MdcOpt, fill, mk);

    assert!(
        mdc_opt < greedy,
        "MDC-opt ({mdc_opt:.3}) must beat greedy ({greedy:.3}) on a 90:10 workload"
    );
    assert!(
        mdc < greedy * 1.05,
        "MDC ({mdc:.3}) should not be worse than greedy ({greedy:.3}) under skew"
    );
    // MDC-opt approaches the analytical optimum from above (small-store effects allow
    // some slack but not a different regime).
    assert!(
        mdc_opt > opt * 0.5 && mdc_opt < opt * 2.5 + 0.3,
        "MDC-opt ({mdc_opt:.3}) should be in the neighbourhood of the analytical optimum ({opt:.3})"
    );
}

/// Figure 4's qualitative finding at test scale: with oracle (exact) frequency keys, a
/// 16-segment sort buffer must not lose to writing pages straight through (at paper
/// scale it clearly wins; the full sweep is the `fig4` bench binary). The miniature
/// geometry used in unit tests makes the second-order effect noisy, so the assertion is
/// a non-inferiority bound rather than a strict win.
#[test]
fn sort_buffer_with_oracle_keys_does_not_hurt() {
    let fill = 0.8;
    let config0 = small_sim(PolicyKind::MdcOpt, fill).with_sort_buffer_segments(0);
    let config16 = small_sim(PolicyKind::MdcOpt, fill).with_sort_buffer_segments(16);
    let total = config0.physical_pages() * 16;
    let mut w0 = HotColdWorkload::from_skew_percent(config0.logical_pages(), 90, 17);
    let mut w16 = HotColdWorkload::from_skew_percent(config16.logical_pages(), 90, 17);
    let r0 = run_simulation(&config0, &mut w0, total, total / 4);
    let r16 = run_simulation(&config16, &mut w16, total, total / 4);
    assert!(
        r16.write_amplification < r0.write_amplification * 1.15,
        "16-segment sort buffer ({:.3}) should not lose clearly to no buffering ({:.3})",
        r16.write_amplification,
        r0.write_amplification
    );
}

/// Figure 3's qualitative finding at test scale: with oracle frequency keys, grouping
/// pages by update frequency (full separation) must not lose to no grouping, and the
/// no-grouping oracle variant behaves like greedy-with-MDC-selection.
#[test]
fn separation_ablation_with_oracle_keys() {
    let fill = 0.8;
    let mk = |pages| -> Box<dyn PageWorkload> {
        Box::new(HotColdWorkload::from_skew_percent(pages, 90, 5))
    };
    let run_sep = |sep: SeparationConfig| {
        let config = small_sim(PolicyKind::MdcOpt, fill).with_separation(sep);
        let mut w = mk(config.logical_pages());
        let total = config.physical_pages() * 16;
        run_simulation(&config, w.as_mut(), total, total / 4).write_amplification
    };
    let full = run_sep(SeparationConfig::full());
    let none = run_sep(SeparationConfig::none());
    assert!(
        full < none * 1.05,
        "full separation ({full:.3}) should not lose to no separation ({none:.3})"
    );
}

/// The real store, driven by the same skewed workload, shows the same qualitative win for
/// MDC over greedy that the simulator shows — the policies are literally the same code,
/// but here they run against real segment images, a device and a page table.
#[test]
fn real_store_reproduces_the_simulator_ordering() {
    let mut config = StoreConfig::small_for_tests();
    config.num_segments = 128;
    config.sort_buffer_segments = 8;
    let pages = config.logical_pages_for_fill_factor(0.8) as u64;
    let payload = vec![9u8; config.page_bytes];

    let mut wamp = std::collections::HashMap::new();
    for policy in [PolicyKind::Greedy, PolicyKind::MdcOpt] {
        let store = LogStore::open_in_memory(config.clone().with_policy(policy)).unwrap();
        for p in 0..pages {
            store.put(p, &payload).unwrap();
        }
        store.reset_stats();
        let mut workload = HotColdWorkload::from_skew_percent(pages, 90, 4);
        for _ in 0..(config.physical_pages() as u64 * 6) {
            store.put(workload.next_page(), &payload).unwrap();
        }
        store.flush().unwrap();
        wamp.insert(policy, store.stats().write_amplification());
        // Data integrity under cleaning.
        for p in (0..pages).step_by(97) {
            assert!(store.get(p).unwrap().is_some(), "{policy:?} lost page {p}");
        }
    }
    // Note: the real store's MDC-opt has no oracle frequencies (they are a simulator
    // feature), so it runs on estimates; it must still not lose badly to greedy, and
    // usually wins.
    let greedy = wamp[&PolicyKind::Greedy];
    let mdc = wamp[&PolicyKind::MdcOpt];
    assert!(
        mdc < greedy * 1.15,
        "store-level MDC ({mdc:.3}) should be competitive with greedy ({greedy:.3})"
    );
}

/// End-to-end Figure 6 pipeline at miniature scale: TPC-C on the B+-tree produces a
/// trace, the trace replays through the simulator, and MDC does not lose to age-based
/// cleaning on it.
#[test]
fn tpcc_trace_pipeline_end_to_end() {
    let mut driver = TpccDriver::new(TpccConfig::tiny_for_tests()).unwrap();
    driver.run(2_000).unwrap();
    let (trace, distinct) = driver.finish().unwrap();
    assert!(
        trace.len() > 500,
        "expected a non-trivial trace, got {}",
        trace.len()
    );

    let fill = 0.7;
    let pages_per_segment = 32;
    let mut results = Vec::new();
    for policy in [PolicyKind::Age, PolicyKind::Mdc] {
        let workload = TraceWorkload::with_empirical_frequencies("tpcc", &trace);
        let num_segments = ((workload.num_pages() as f64 / fill / pages_per_segment as f64).ceil()
            as usize)
            .max(48);
        let config = SimConfig {
            pages_per_segment,
            num_segments,
            fill_factor: fill,
            policy,
            ..SimConfig::small_for_tests(policy)
        };
        let mut w = workload;
        let total = (config.physical_pages() * 10).max(trace.len() as u64);
        results.push(run_simulation(&config, &mut w, total, total / 4));
    }
    let age = results[0].write_amplification;
    let mdc = results[1].write_amplification;
    assert!(distinct > 0);
    assert!(
        mdc <= age * 1.05,
        "MDC ({mdc:.3}) should not lose to age ({age:.3}) on the TPC-C trace"
    );
}
