//! Seeded durability property: random put/delete/clean/checkpoint interleavings
//! against a store with a live background cleaner pool, crashed and reopened through
//! the checkpoint journal several times per run. After every crash the recovered
//! store must match the model **byte-exactly** — every live page holds its newest
//! value, every deleted page stays dead (the cleaner's tombstone re-emission and the
//! checkpoint-covered drop proof both get exercised, because mid-run checkpoints
//! publish frontiers while cleaning is racing them).
//!
//! Runs at `cleaner_threads ∈ {1, 2, 4}` with per-thread-count seeds derived from
//! `LSS_STRESS_SEED` (default 7700), so the CI stress loop explores a fresh
//! interleaving per iteration and any hit replays with
//! `LSS_STRESS_SEED=<seed> cargo test --release --test durability_property`.

mod common;

use common::{apply_env_concurrency, stress_seed_or, CrashPointDevice};
use lss::core::policy::PolicyKind;
use lss::core::{LogStore, SharedLogStore, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn temp_journal(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lss-durability-{tag}-{}.ckpt", std::process::id()))
}

fn payload(page: u64, version: u64, len: usize) -> Vec<u8> {
    let len = len.max(16);
    let mut v = vec![(page ^ version) as u8; len];
    v[..8].copy_from_slice(&page.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

/// One seeded run: four crash generations, each a random interleaving of puts,
/// deletes, forced cleaning cycles and incremental checkpoints (on top of whatever
/// the background pool does on its own), ending in flush + checkpoint + device kill.
/// Reopen goes through the journal and must reproduce the model byte-for-byte.
fn run_crash_generations(seed: u64, cleaner_threads: usize) {
    let mut config = apply_env_concurrency(
        StoreConfig::small_for_tests()
            .with_policy(PolicyKind::Mdc)
            .with_cleaner_threads(cleaner_threads)
            .with_gc_read_pool(2),
    );
    config.num_segments = 96;
    println!(
        "durability property: seed={seed} cleaner_threads={} write_streams={}",
        config.cleaner_threads, config.write_streams
    );
    let max_page = config.logical_pages_for_fill_factor(0.5) as u64;
    let max_len = config.page_bytes;
    let device = CrashPointDevice::new(config.segment_bytes, config.num_segments);
    let path = temp_journal(seed);
    std::fs::remove_file(&path).ok();

    let mut store = SharedLogStore::new(
        LogStore::open_with_device(config.clone(), Box::new(device.clone())).unwrap(),
    );
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut rng = StdRng::seed_from_u64(seed);

    for generation in 0..4u32 {
        for i in 0..1_200u64 {
            let roll = rng.gen_range(0..100u32);
            let page = rng.gen_range(0..max_page);
            if roll < 30 {
                store.delete(page).unwrap();
                model.remove(&page);
            } else if roll < 95 {
                let version = u64::from(generation) * 10_000 + i;
                let p = payload(page, version, rng.gen_range(16..=max_len));
                store.put(page, &p).unwrap();
                model.insert(page, p);
            } else if roll < 98 {
                store.clean_now().unwrap();
            } else {
                // A mid-run checkpoint: publishes a frontier the racing cleaners may
                // use to drop covered tombstones instead of re-emitting them.
                store.with_store(|s| s.checkpoint_log_to(&path)).unwrap();
            }
        }

        // The crash point: everything acknowledged durable, then the device dies
        // under whatever the background pool still had in flight.
        store.flush().unwrap();
        store.with_store(|s| s.checkpoint_log_to(&path)).unwrap();
        device.kill();
        let inner = store.try_into_inner().expect("sole handle");
        drop(inner); // the process dies

        device.heal();
        let recovered =
            LogStore::recover_with_checkpoint(config.clone(), Box::new(device.clone()), &path)
                .unwrap_or_else(|e| {
                    panic!("seed {seed}, generation {generation}: reopen failed: {e}")
                });
        let ctx = format!("seed {seed}, generation {generation}");
        assert_eq!(
            recovered.live_pages(),
            model.len(),
            "{ctx}: live-page count diverged"
        );
        for p in 0..max_page {
            match model.get(&p) {
                Some(value) => assert_eq!(
                    recovered.get(p).unwrap().as_deref(),
                    Some(value.as_slice()),
                    "{ctx}: page {p} wrong after recovery"
                ),
                None => assert!(
                    recovered.get(p).unwrap().is_none(),
                    "{ctx}: page {p} resurrected after recovery"
                ),
            }
        }

        // The next generation continues on the recovered store: churn keeps
        // compounding across restarts, exactly like a long-lived deployment.
        store = SharedLogStore::new(recovered);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn random_interleavings_recover_exactly_at_every_crash() {
    let base = stress_seed_or(7700);
    for &cleaner_threads in &[1usize, 2, 4] {
        run_crash_generations(base + cleaner_threads as u64, cleaner_threads);
    }
}
