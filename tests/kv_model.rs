//! Seeded multi-threaded model test for the paged KV layer: four writer threads on
//! disjoint key spaces (each checked against its own `BTreeMap` model), a background
//! cleaner hammering `clean_now`, a checkpointer committing epochs mid-flight, and a
//! scanner asserting ordered, well-formed range scans — all against one shared
//! [`KvStore`]. Honours `LSS_WRITE_STREAMS` / `LSS_CLEANER_THREADS` like the other
//! stress suites, so the CI stress job runs it with the concurrency knobs cranked.
//!
//! Per-key linearizability here is simple because key spaces are disjoint: a thread is
//! the only writer of its keys, so every `get` it issues must observe its own latest
//! `put`/`delete` exactly — any stale or lost value is a bug in the index latch, the
//! value-page allocator, the CoW epoch machinery or the cleaner's relocation CAS.

mod common;

use common::{apply_env_concurrency, stress_seed_or};
use lss::btree::kv::KvStore;
use lss::core::policy::PolicyKind;
use lss::core::{LogStore, StoreConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: u32 = 4;
const OPS_PER_WRITER: u32 = 1_200;
const KEYS_PER_WRITER: u32 = 120;

fn config() -> StoreConfig {
    let mut c = apply_env_concurrency(StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc));
    c.num_segments = 256;
    c
}

fn key(t: u32, i: u32) -> Vec<u8> {
    format!("t{t}:k{i:04}").into_bytes()
}

fn value(t: u32, i: u32, seq: u32) -> Vec<u8> {
    format!("t{t}:k{i:04}=s{seq}").into_bytes()
}

/// Deterministic per-thread RNG (splitmix-style).
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn writer(kv: &KvStore, t: u32, checkpointer: bool) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut rng = Rng(0xC0FFEE ^ (t as u64) << 32);
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for seq in 0..OPS_PER_WRITER {
        let i = (rng.next() % KEYS_PER_WRITER as u64) as u32;
        let k = key(t, i);
        match rng.next() % 10 {
            // 60% put, with an immediate get-after-put linearizability check.
            0..=5 => {
                let v = value(t, i, seq);
                kv.put(&k, &v).unwrap();
                model.insert(k.clone(), v.clone());
                let got = kv.get(&k).unwrap().expect("get-after-put lost the key");
                assert_eq!(
                    got.as_ref(),
                    v.as_slice(),
                    "get-after-put read a stale value"
                );
            }
            // 20% get: must equal this thread's model exactly (sole writer).
            6 | 7 => {
                let got = kv.get(&k).unwrap();
                assert_eq!(
                    got.as_deref(),
                    model.get(&k).map(|v| v.as_slice()),
                    "point read diverged from the single-writer model for {}",
                    String::from_utf8_lossy(&k)
                );
            }
            // 10% delete.
            8 => {
                let existed = kv.delete(&k).unwrap();
                assert_eq!(existed, model.remove(&k).is_some(), "delete result wrong");
                assert!(kv.get(&k).unwrap().is_none(), "deleted key still readable");
            }
            // 10% range over this thread's own prefix: nobody else writes here and
            // this thread is not writing while it scans, so the per-leaf-validated
            // scan must equal the model exactly.
            _ => {
                let lo = key(t, i);
                let hi = key(t, i.saturating_add(16));
                let scanned = kv.range(&lo, &hi).unwrap();
                let expected: Vec<(Vec<u8>, Vec<u8>)> = model
                    .range(lo..hi)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(
                    scanned.len(),
                    expected.len(),
                    "own-prefix range scan has wrong cardinality"
                );
                for ((sk, sv), (ek, ev)) in scanned.iter().zip(expected.iter()) {
                    assert_eq!(sk, ek, "own-prefix scan key order");
                    assert_eq!(sv.as_ref(), ev.as_slice(), "own-prefix scan value");
                }
            }
        }
        // The checkpointing writer commits epochs while everyone else is mid-flight.
        if checkpointer && seq % 300 == 299 {
            kv.flush().unwrap();
        }
    }
    model
}

#[test]
fn seeded_multithreaded_kv_model() {
    let kv = Arc::new(KvStore::open(LogStore::open_in_memory(config()).unwrap()).unwrap());
    let stop = Arc::new(AtomicBool::new(false));

    let mut models: Vec<BTreeMap<Vec<u8>, Vec<u8>>> = Vec::new();
    std::thread::scope(|scope| {
        // Background cleaner: reclaim space continuously under the writers.
        let cleaner = {
            let kv = kv.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // I/O errors cannot happen on MemDevice; OutOfSpace cannot either
                    // (cleaning only frees). Treat any error as fatal for the test.
                    kv.store().clean_now().unwrap();
                    std::thread::yield_now();
                }
            })
        };
        // Global scanner: ordered, well-formed snapshots while writers run.
        let scanner = {
            let kv = kv.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let scanned = kv.range(b"t", b"u").unwrap();
                    for w in scanned.windows(2) {
                        assert!(w[0].0 < w[1].0, "global scan out of order");
                    }
                    for (k, v) in &scanned {
                        // Every value embeds its key: torn reads would break this.
                        assert!(
                            v.starts_with(k.as_slice()),
                            "value {:?} does not belong to key {:?}",
                            String::from_utf8_lossy(v),
                            String::from_utf8_lossy(k)
                        );
                    }
                    rounds += 1;
                }
                assert!(rounds > 0);
            })
        };

        let writers: Vec<_> = (0..WRITERS)
            .map(|t| {
                let kv = kv.clone();
                scope.spawn(move || writer(&kv, t, t == 0))
            })
            .collect();
        for h in writers {
            models.push(h.join().unwrap());
        }
        stop.store(true, Ordering::Relaxed);
        cleaner.join().unwrap();
        scanner.join().unwrap();
    });

    // Final verification: the union of the per-thread models is exactly the store.
    let mut union: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for m in &models {
        union.extend(m.iter().map(|(k, v)| (k.clone(), v.clone())));
    }
    assert_eq!(kv.len(), union.len());
    let scanned = kv.range(b"", b"~~~~~~~~").unwrap();
    assert_eq!(scanned.len(), union.len());
    for ((sk, sv), (ek, ev)) in scanned.iter().zip(union.iter()) {
        assert_eq!(sk, ek);
        assert_eq!(sv.as_ref(), ev.as_slice());
    }
    assert!(
        kv.store().stats().cleaning_cycles > 0,
        "the cleaner thread never completed a cycle — the test lost its adversary"
    );

    // And the whole thing commits + survives a restart.
    kv.flush().unwrap();
    let kv = match Arc::try_unwrap(kv) {
        Ok(kv) => kv,
        Err(_) => unreachable!("all clones joined"),
    };
    let store = kv.into_inner();
    let cfg = store.config().clone();
    let reopened =
        KvStore::open(LogStore::recover_with_device(cfg, store.into_device()).unwrap()).unwrap();
    assert_eq!(reopened.len(), union.len());
    for (k, v) in union.iter().step_by(7) {
        assert_eq!(reopened.get(k).unwrap().unwrap().as_ref(), v.as_slice());
    }
}

/// Overlapping-keyspace mode: every writer races on the *same* keys, so the index
/// tree sees concurrent inserts/deletes/splits on one leaf population — exactly the
/// races optimistic lock-coupling must survive. Per-op linearizability against a
/// local model is impossible here (another writer may win any race), so the checks
/// are: every read is well-formed (the value embeds its key), and after the writers
/// quiesce, every surviving key holds the *last* value some writer wrote to it —
/// program order within a writer means the globally last insert of a key is that
/// writer's last put of it. Honours `LSS_STRESS_SEED`.
#[test]
fn overlapping_keyspace_racing_writers() {
    const SHARED_KEYS: u32 = 96;
    let seed = stress_seed_or(0xBEEF_CAFE);
    let kv = Arc::new(KvStore::open(LogStore::open_in_memory(config()).unwrap()).unwrap());

    fn shared_key(i: u32) -> Vec<u8> {
        format!("race:k{i:04}").into_bytes()
    }

    // Each writer returns, per key: Some(last value it put) or None (its last op on
    // the key was a delete).
    let mut finals: Vec<BTreeMap<Vec<u8>, Option<Vec<u8>>>> = Vec::new();
    std::thread::scope(|scope| {
        let stop = Arc::new(AtomicBool::new(false));
        let cleaner = {
            let kv = kv.clone();
            let stop = stop.clone();
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    kv.store().clean_now().unwrap();
                    std::thread::yield_now();
                }
            })
        };
        let handles: Vec<_> = (0..WRITERS)
            .map(|t| {
                let kv = kv.clone();
                scope.spawn(move || {
                    let mut rng = Rng(seed ^ ((t as u64) << 40) ^ 0x5EED);
                    let mut last: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
                    for seq in 0..OPS_PER_WRITER {
                        let i = (rng.next() % SHARED_KEYS as u64) as u32;
                        let k = shared_key(i);
                        match rng.next() % 10 {
                            // 70% put: values of varying length force leaf splits at
                            // racing positions. The value embeds the key.
                            0..=6 => {
                                let pad = "x".repeat((rng.next() % 48) as usize);
                                let v = [k.as_slice(), format!("=w{t}s{seq}:{pad}").as_bytes()]
                                    .concat();
                                kv.put(&k, &v).unwrap();
                                last.insert(k, Some(v));
                            }
                            // 20% get: whatever wins the race, the value must be
                            // well-formed for this key (no torn/foreign reads).
                            7 | 8 => {
                                if let Some(v) = kv.get(&k).unwrap() {
                                    assert!(
                                        v.starts_with(k.as_slice()),
                                        "value {:?} does not belong to key {:?}",
                                        String::from_utf8_lossy(&v),
                                        String::from_utf8_lossy(&k)
                                    );
                                }
                            }
                            // 10% delete.
                            _ => {
                                kv.delete(&k).unwrap();
                                last.insert(k, None);
                            }
                        }
                        if t == 0 && seq % 300 == 299 {
                            kv.flush().unwrap();
                        }
                    }
                    last
                })
            })
            .collect();
        for h in handles {
            finals.push(h.join().unwrap());
        }
        stop.store(true, Ordering::Relaxed);
        cleaner.join().unwrap();
    });

    // Quiesced verification: each surviving key's value must be some writer's final
    // write to it (and an absent key means some writer's final op was a delete).
    let scanned = kv.range(b"race:", b"race:~").unwrap();
    for w in scanned.windows(2) {
        assert!(w[0].0 < w[1].0, "final scan out of order");
    }
    let present: BTreeMap<Vec<u8>, Vec<u8>> =
        scanned.into_iter().map(|(k, v)| (k, v.to_vec())).collect();
    for i in 0..SHARED_KEYS {
        let k = shared_key(i);
        let candidates: Vec<&Option<Vec<u8>>> = finals.iter().filter_map(|m| m.get(&k)).collect();
        match present.get(&k) {
            Some(v) => assert!(
                candidates
                    .iter()
                    .any(|c| c.as_deref() == Some(v.as_slice())),
                "key {} holds a value no writer finished with (seed {seed:#x})",
                String::from_utf8_lossy(&k)
            ),
            None => assert!(
                candidates.is_empty() || candidates.iter().any(|c| c.is_none()),
                "key {} vanished but no writer's last op deleted it (seed {seed:#x})",
                String::from_utf8_lossy(&k)
            ),
        }
    }

    // Restart equivalence: commit, reopen, identical contents.
    kv.flush().unwrap();
    let kv = Arc::try_unwrap(kv).unwrap_or_else(|_| unreachable!("all clones joined"));
    let store = kv.into_inner();
    let cfg = store.config().clone();
    let reopened =
        KvStore::open(LogStore::recover_with_device(cfg, store.into_device()).unwrap()).unwrap();
    let after: BTreeMap<Vec<u8>, Vec<u8>> = reopened
        .range(b"race:", b"race:~")
        .unwrap()
        .into_iter()
        .map(|(k, v)| (k, v.to_vec()))
        .collect();
    assert_eq!(present, after, "restart changed the committed contents");
}

/// Regression test for the PR 4 reader-starvation hazard: back-to-back scanners used
/// to monopolise the tree's reader-preferring `RwLock` on a single core, stalling
/// writers (and the flusher's exclusive latch) indefinitely — the model test's
/// scanner had to hand-yield between snapshots. Optimistic reads removed the latch,
/// so scanners looping *without any yield* must not keep writers from finishing.
#[test]
fn unthrottled_scanners_do_not_stall_writers() {
    const SCANNERS: u32 = 3;
    const WRITER_OPS: u32 = 600;
    let kv = Arc::new(KvStore::open(LogStore::open_in_memory(config()).unwrap()).unwrap());
    for i in 0..KEYS_PER_WRITER {
        let k = key(9, i);
        kv.put(&k, &[k.as_slice(), b"=seed"].concat()).unwrap();
    }

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        let stop = Arc::new(AtomicBool::new(false));
        let scanners: Vec<_> = (0..SCANNERS)
            .map(|_| {
                let kv = kv.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    // Deliberately no yield: this tight loop is the old starvation
                    // trigger.
                    while !stop.load(Ordering::Relaxed) {
                        let scanned = kv.range(b"t", b"u").unwrap();
                        for (k, v) in &scanned {
                            assert!(v.starts_with(k.as_slice()));
                        }
                    }
                })
            })
            .collect();
        let writers: Vec<_> = (0..2u32)
            .map(|t| {
                let kv = kv.clone();
                scope.spawn(move || {
                    for seq in 0..WRITER_OPS {
                        let i = (t * 7 + seq) % KEYS_PER_WRITER;
                        let k = key(9, i);
                        kv.put(
                            &k,
                            &[k.as_slice(), format!("=w{t}s{seq}").as_bytes()].concat(),
                        )
                        .unwrap();
                        if t == 0 && seq % 200 == 199 {
                            // The flusher's exclusive epoch latch was the other
                            // starvation victim.
                            kv.flush().unwrap();
                        }
                    }
                })
            })
            .collect();
        // Under the old latch this join never returned on a single core; with
        // optimistic reads the writers finish regardless of scanner pressure.
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in scanners {
            h.join().unwrap();
        }
    });
    assert!(
        start.elapsed() < std::time::Duration::from_secs(120),
        "writers took {:?} against unthrottled scanners — reader starvation is back",
        start.elapsed()
    );
    assert_eq!(kv.len() as u32, KEYS_PER_WRITER);
}
