//! Randomized model tests for the core invariants of the workspace:
//!
//! * the log-structured store behaves exactly like a `HashMap` under arbitrary
//!   put/delete/overwrite sequences, across flushes, cleaning and crash recovery;
//! * the B+-tree behaves exactly like a `BTreeMap` under arbitrary operation sequences;
//! * segment images and write traces round-trip through their binary encodings;
//! * the analytical fixpoint respects its defining equation across fill factors.
//!
//! Cases are generated from seeded RNGs (no proptest in the offline vendor set), so every
//! run explores the same operation sequences and failures reproduce deterministically.

use lss::btree::{BTree, BufferPool, MemPageStore};
use lss::core::layout::{self, decode_segment, SegmentBuilder};
use lss::core::policy::PolicyKind;
use lss::core::{LogStore, SegmentId, SharedLogStore, StoreConfig};
use lss::workload::{PageWorkload, WriteTrace, ZipfianWorkload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

mod common;

/// One user-level operation against the store.
#[derive(Debug, Clone)]
enum Op {
    Put { page: u64, len: usize, fill: u8 },
    Delete { page: u64 },
}

fn random_ops(rng: &mut StdRng, count: usize, max_page: u64, max_len: usize) -> Vec<Op> {
    (0..count)
        .map(|_| {
            if rng.gen_range(0..5u32) == 0 {
                Op::Delete {
                    page: rng.gen_range(0..max_page),
                }
            } else {
                Op::Put {
                    page: rng.gen_range(0..max_page),
                    len: rng.gen_range(1..max_len),
                    fill: rng.gen_range(0..=255u32) as u8,
                }
            }
        })
        .collect()
}

fn expected_payload(len: usize, fill: u8) -> Vec<u8> {
    let mut v = vec![fill; len];
    if len >= 8 {
        v[..8].copy_from_slice(&(len as u64).to_le_bytes());
    }
    v
}

/// The store is a faithful map under arbitrary operation sequences, including after a
/// flush + full crash recovery from the device.
#[test]
fn store_matches_hashmap_model() {
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = 1 + rng.gen_range(0..300usize);
        let ops = random_ops(&mut rng, count, 40, 180);
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
        let store = LogStore::open_in_memory(config.clone()).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Put { page, len, fill } => {
                    let payload = expected_payload(len, fill);
                    store.put(page, &payload).unwrap();
                    model.insert(page, payload);
                }
                Op::Delete { page } => {
                    store.delete(page).unwrap();
                    model.remove(&page);
                }
            }
        }
        // Live state matches the model before any flush (reads served from buffers).
        for (&page, value) in &model {
            let got = store.get(page).unwrap();
            assert_eq!(
                got.as_deref(),
                Some(value.as_slice()),
                "seed {seed} page {page}"
            );
        }
        for page in 0..40u64 {
            if !model.contains_key(&page) {
                assert!(
                    store.get(page).unwrap().is_none(),
                    "seed {seed} ghost page {page}"
                );
            }
        }

        // After flush + recovery from the raw device, the state is identical.
        store.flush().unwrap();
        let device = store.into_device();
        let recovered = LogStore::recover_with_device(config, device).unwrap();
        assert_eq!(recovered.live_pages(), model.len(), "seed {seed}");
        for (&page, value) in &model {
            let got = recovered.get(page).unwrap();
            assert_eq!(
                got.as_deref(),
                Some(value.as_slice()),
                "seed {seed} page {page}"
            );
        }
    }
}

/// The B+-tree is a faithful ordered map under arbitrary operation sequences.
#[test]
fn btree_matches_btreemap_model() {
    for seed in 100..124u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = 1 + rng.gen_range(0..400usize);
        let ops = random_ops(&mut rng, count, 200, 40);
        let pool = BufferPool::new(MemPageStore::new(512), 32);
        let tree = BTree::open(pool).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Put { page, len, fill } => {
                    let key = format!("key-{page:06}").into_bytes();
                    let value = expected_payload(len.min(60), fill);
                    tree.insert(&key, &value).unwrap();
                    model.insert(key, value);
                }
                Op::Delete { page } => {
                    let key = format!("key-{page:06}").into_bytes();
                    let existed = model.remove(&key).is_some();
                    assert_eq!(tree.delete(&key).unwrap(), existed, "seed {seed}");
                }
            }
        }
        assert_eq!(tree.len() as usize, model.len(), "seed {seed}");
        for (key, value) in &model {
            let got = tree.get(key).unwrap();
            assert_eq!(got.as_deref(), Some(value.as_slice()), "seed {seed}");
        }
        // Full ordered scan equals the model's iteration order.
        let scanned = tree.range(b"", b"zzzzzzzzzzzz").unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(scanned, expected, "seed {seed}");
    }
}

/// Segment images round-trip arbitrary page batches (ids, payload sizes, tombstones).
#[test]
fn segment_layout_roundtrips() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let segment_bytes = 8192;
        let mut builder = SegmentBuilder::new(segment_bytes);
        let mut pushed = Vec::new();
        let batch = rng.gen_range(0..20usize);
        for i in 0..batch {
            let page: u64 = rng.gen();
            let len = rng.gen_range(0..200usize);
            let tombstone = rng.gen_bool(0.25);
            if tombstone {
                if builder.fits(0) {
                    builder.push_tombstone(page, i as u64);
                    pushed.push((page, None));
                }
            } else if builder.fits(len) {
                let payload = vec![(i % 251) as u8; len];
                builder.push_page(page, i as u64, &payload);
                pushed.push((page, Some(payload)));
            }
        }
        let (image, _) = builder.finish(7, 100, 50);
        assert_eq!(image.len(), segment_bytes);
        let parsed = decode_segment(SegmentId(0), &image).unwrap().unwrap();
        assert_eq!(parsed.entries.len(), pushed.len(), "seed {seed}");
        for (entry, (page, payload)) in parsed.entries.iter().zip(&pushed) {
            assert_eq!(entry.page_id, *page, "seed {seed}");
            match payload {
                None => assert!(entry.is_tombstone(), "seed {seed}"),
                Some(p) => {
                    let got = &image[entry.offset as usize..(entry.offset + entry.len) as usize];
                    assert_eq!(got, p.as_slice(), "seed {seed}");
                }
            }
        }
    }
}

/// Write traces round-trip their binary file format.
#[test]
fn write_trace_roundtrips() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..2000usize);
        let writes: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
        let trace = WriteTrace { writes };
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = WriteTrace::read_from(&buf[..]).unwrap();
        assert_eq!(back, trace, "seed {seed}");
    }
}

/// The Table 1 fixpoint actually satisfies E = 1 - e^(-E/F) and always beats the
/// average slack 1 - F.
#[test]
fn uniform_emptiness_satisfies_its_equation() {
    for i in 0..200 {
        let f = 0.05 + 0.94 * (i as f64 / 199.0);
        let e = lss::analysis::table1::uniform_emptiness(f);
        let rhs = 1.0 - (-e / f).exp();
        assert!((e - rhs).abs() < 1e-9, "E={e} is not a fixpoint at F={f}");
        assert!(
            e >= 1.0 - f - 1e-9,
            "E={e} below the average slack at F={f}"
        );
        assert!(e < 1.0);
    }
}

/// Zipfian exact frequencies are a proper probability assignment regardless of theta
/// and population size.
#[test]
fn zipfian_frequencies_are_normalised() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..40 {
        let n = rng.gen_range(2u64..400);
        let mut theta = rng.gen_range(0.3f64..1.6);
        if (theta - 1.0).abs() <= 0.01 {
            theta = 1.1; // the harmonic normalisation has a removable singularity at 1
        }
        let w = ZipfianWorkload::new(n, theta, 1);
        let sum: f64 = (0..n).map(|p| w.update_frequency(p).unwrap()).sum();
        assert!((sum / n as f64 - 1.0).abs() < 1e-6, "n={n} theta={theta}");
    }
}

/// Dump everything needed to chase a concurrent-cleaner model failure — the RNG seed
/// (replayable via [`replay_concurrent_cleaner_model`]), the store knobs, the op the
/// run died at, and the op trace filtered to the failing page plus the most recent
/// tail — then panic. `cargo test` only prints captured stdout for failing tests, so
/// the dump costs nothing on green runs but makes any stress-job hit actionable.
fn fail_concurrent_cleaner_model(
    seed: u64,
    cleaner_threads: usize,
    ops: &[Op],
    at: usize,
    page: Option<u64>,
    detail: String,
) -> ! {
    println!(
        "=== concurrent-cleaner model FAILURE ===\n\
         seed={seed} cleaner_threads={cleaner_threads} op_index={at} page={page:?}\n\
         {detail}\n\
         replay: LSS_REPLAY_SEED={seed} LSS_REPLAY_CLEANERS={cleaner_threads} \
         cargo test --release --test property_tests replay_concurrent_cleaner_model -- \
         --ignored --exact --nocapture"
    );
    if let Some(p) = page {
        println!("--- full op history of page {p} (up to op {at}) ---");
        for (i, op) in ops.iter().enumerate().take(at + 1) {
            let touches = matches!(*op,
                Op::Put { page, .. } | Op::Delete { page } if page == p);
            if touches {
                println!("  op {i}: {op:?}");
            }
        }
    }
    let tail_from = at.saturating_sub(40);
    println!("--- last {} ops up to the failure ---", at + 1 - tail_from);
    for (i, op) in ops.iter().enumerate().take(at + 1).skip(tail_from) {
        println!("  op {i}: {op:?}");
    }
    panic!("seed {seed} cleaner_threads={cleaner_threads}: {detail}");
}

/// One run of the concurrent-cleaner model workload with the *exact* RNG seed given
/// (see [`store_matches_model_under_concurrent_cleaners`] for the invariants).
/// Failures go through [`fail_concurrent_cleaner_model`], so the seed and the op
/// trace always reach the test output.
fn run_concurrent_cleaner_model(seed: u64, cleaner_threads: usize) {
    let mut config = StoreConfig::small_for_tests()
        .with_policy(PolicyKind::Mdc)
        .with_cleaner_threads(cleaner_threads)
        .with_gc_read_pool(2);
    config.num_segments = 96;
    println!(
        "concurrent-cleaner model: seed={seed} cleaner_threads={cleaner_threads} \
         write_streams={} (the CI stress job varies the base seed via LSS_STRESS_SEED)",
        config.write_streams
    );
    let capacity = config.num_segments as u64
        * layout::payload_capacity(config.segment_bytes, config.page_bytes) as u64;
    let store = SharedLogStore::new(LogStore::open_in_memory(config.clone()).unwrap());
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();

    let mut rng = StdRng::seed_from_u64(seed);
    let max_page = config.logical_pages_for_fill_factor(0.5) as u64;
    let ops = random_ops(&mut rng, 4_000, max_page, config.page_bytes);
    let mut deleted_ever: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Put { page, len, fill } => {
                let payload = expected_payload(len, fill);
                store.put(page, &payload).unwrap();
                model.insert(page, payload);
            }
            Op::Delete { page } => {
                store.delete(page).unwrap();
                model.remove(&page);
                deleted_ever.insert(page);
            }
        }
        // Get-after-put: the op just acknowledged must be visible right now, even
        // with cleaning cycles in flight.
        if let Op::Put { page, .. } = *op {
            let got = store.get(page).unwrap();
            if got.as_deref() != model.get(&page).map(|v| v.as_slice()) {
                fail_concurrent_cleaner_model(
                    seed,
                    cleaner_threads,
                    &ops,
                    i,
                    Some(page),
                    format!(
                        "op {i} not visible after ack: got {:?} bytes, expected {:?} bytes",
                        got.map(|b| b.len()),
                        model.get(&page).map(|v| v.len())
                    ),
                );
            }
        }
        if i % 256 == 0 {
            let live = store.with_store(|s| s.live_bytes());
            if live > capacity {
                fail_concurrent_cleaner_model(
                    seed,
                    cleaner_threads,
                    &ops,
                    i,
                    None,
                    format!("live bytes {live} exceed device capacity {capacity}"),
                );
            }
        }
    }

    store.flush().unwrap();
    let last = ops.len() - 1;
    let live = store.with_store(|s| s.live_bytes());
    if live > capacity {
        fail_concurrent_cleaner_model(
            seed,
            cleaner_threads,
            &ops,
            last,
            None,
            format!("live bytes {live} exceed capacity {capacity} after flush"),
        );
    }
    if store.live_pages() != model.len() {
        fail_concurrent_cleaner_model(
            seed,
            cleaner_threads,
            &ops,
            last,
            None,
            format!(
                "live-page count diverged after flush: store {} vs model {}",
                store.live_pages(),
                model.len()
            ),
        );
    }
    for (&page, value) in &model {
        if store.get(page).unwrap().as_deref() != Some(value.as_slice()) {
            fail_concurrent_cleaner_model(
                seed,
                cleaner_threads,
                &ops,
                last,
                Some(page),
                format!("page {page} wrong after flush"),
            );
        }
    }

    // Shut the pool down, recover from the device image, and require *exact* recovery:
    // every live (model) page comes back byte-identical, and nothing else exists —
    // including pages that were deleted at some point. Deletion is durable because the
    // cleaner never drops a delete fact without proof of redundancy: a victim's
    // tombstones are re-emitted into the cycle's GC output streams (keeping their
    // write sequences) unless the page was recreated or a committed checkpoint covers
    // the victim — and this workload takes no checkpoints, so every delete fact is
    // still in the log and the scan cannot resurrect anything. (The old tolerated
    // resurrection window — PR 5's documented limitation — is exactly the bug the
    // re-emission protocol closes; `tests/tombstone_resurrection.rs` pins the seed
    // that exposed it.)
    let inner = store.try_into_inner().expect("sole handle");
    let recovered = LogStore::recover_with_device(config.clone(), inner.into_device()).unwrap();
    for (&page, value) in &model {
        if recovered.get(page).unwrap().as_deref() != Some(value.as_slice()) {
            fail_concurrent_cleaner_model(
                seed,
                cleaner_threads,
                &ops,
                last,
                Some(page),
                format!("page {page} wrong after recovery"),
            );
        }
    }
    for page in 0..max_page {
        if !model.contains_key(&page) && recovered.get(page).unwrap().is_some() {
            let detail = if deleted_ever.contains(&page) {
                format!("deleted page {page} resurrected by scan recovery")
            } else {
                format!("page {page} was never written yet exists after recovery")
            };
            fail_concurrent_cleaner_model(seed, cleaner_threads, &ops, last, Some(page), detail);
        }
    }
    if recovered.live_pages() != model.len() {
        fail_concurrent_cleaner_model(
            seed,
            cleaner_threads,
            &ops,
            last,
            None,
            format!(
                "recovered live-page count diverged: store {} vs model {}",
                recovered.live_pages(),
                model.len()
            ),
        );
    }
}

/// Seeded random workloads against a store with a live background cleaner pool at
/// `cleaner_threads ∈ {1, 2, 4}`:
///
/// * **get-after-put linearizability** — every acknowledged `put` is immediately and
///   thereafter readable with exactly the written bytes (concurrent cycles relocate
///   pages under the reader, so this exercises the CAS-commit and pin protocols);
/// * **capacity invariant** — total live bytes never exceed the device's payload
///   capacity, no matter how the cleaner interleaves;
/// * **exact recovery** — after a flush, scan recovery from the device alone
///   reproduces the model byte-for-byte: every live page comes back identical, no
///   page exists that the model lacks (deleted pages stay dead — the cleaner
///   re-emits tombstones rather than dropping them, see `store::gc_driver`), and
///   the live-page count matches exactly.
///
/// The base seed defaults to the historical 4242 and is overridden by
/// `LSS_STRESS_SEED` (the CI stress job varies it per iteration); any failure prints
/// the seed, the op trace of the failing page and a ready-to-paste replay command
/// (see [`fail_concurrent_cleaner_model`]).
#[test]
fn store_matches_model_under_concurrent_cleaners() {
    let base_seed = common::stress_seed_or(4242);
    for &cleaner_threads in &[1usize, 2, 4] {
        run_concurrent_cleaner_model(base_seed + cleaner_threads as u64, cleaner_threads);
    }
}

/// Seed-replay entry point for chasing a failure. With `LSS_REPLAY_CLEANERS` set,
/// `LSS_REPLAY_SEED` is the *exact* seed a failure dump printed; without it, the
/// value is treated as the base seed and all three pool sizes replay:
///
/// ```text
/// LSS_REPLAY_SEED=4244 LSS_REPLAY_CLEANERS=2 \
///   cargo test --release --test property_tests replay_concurrent_cleaner_model -- \
///   --ignored --exact --nocapture
/// ```
///
/// Ignored by default: it exists to re-run one exact seed from a stress-job dump, in
/// a loop if need be (`for i in $(seq 50); do ... || break; done`).
#[test]
#[ignore = "replay harness: set LSS_REPLAY_SEED (and optionally LSS_REPLAY_CLEANERS)"]
fn replay_concurrent_cleaner_model() {
    let seed: u64 = std::env::var("LSS_REPLAY_SEED")
        .expect("set LSS_REPLAY_SEED=<seed> to replay")
        .parse()
        .expect("LSS_REPLAY_SEED must be a u64");
    match std::env::var("LSS_REPLAY_CLEANERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(cleaners) => run_concurrent_cleaner_model(seed, cleaners),
        None => {
            for &cleaner_threads in &[1usize, 2, 4] {
                run_concurrent_cleaner_model(seed + cleaner_threads as u64, cleaner_threads);
            }
        }
    }
}

/// The live emptiness histogram exported through `StoreStats` must agree with the
/// accounting ledger: bins sum to the sealed-segment count, and after a flush (nothing
/// buffered, nothing open) the sealed live bytes equal the page table's live bytes.
#[test]
fn emptiness_histogram_sums_to_the_ledger_totals() {
    let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
    let store = LogStore::open_in_memory(config.clone()).unwrap();
    let pages = config.logical_pages_for_fill_factor(0.6) as u64;
    let payload = vec![9u8; config.page_bytes];
    for i in 0..(config.physical_pages() as u64 * 4) {
        store
            .put(lss::core::util::mix64(i) % pages, &payload)
            .unwrap();
    }
    store.flush().unwrap();

    let stats = store.stats();
    assert!(stats.cleaning_cycles > 0, "cleaning never participated");
    assert_eq!(
        stats.emptiness_histogram.len(),
        lss::core::stats::EMPTINESS_HISTOGRAM_BINS
    );
    assert_eq!(
        stats.emptiness_histogram.iter().sum::<u64>(),
        stats.sealed_segments,
        "histogram bins must sum to the sealed-segment count"
    );
    assert!(stats.sealed_segments > 0);
    // After a flush every live page sits in a sealed segment, so the ledger's sealed
    // live bytes must equal the page table's aggregate exactly.
    assert_eq!(stats.sealed_live_bytes, store.live_bytes());

    // The histogram is a gauge: overwriting everything shifts mass toward emptier
    // bins, and the identity keeps holding.
    for i in 0..pages / 2 {
        store.put(i, &payload).unwrap();
    }
    store.flush().unwrap();
    let stats = store.stats();
    assert_eq!(
        stats.emptiness_histogram.iter().sum::<u64>(),
        stats.sealed_segments
    );
    assert_eq!(stats.sealed_live_bytes, store.live_bytes());
}

/// Deterministic long-run companion: heavy overwrites so cleaning definitely
/// participates in the model equivalence.
#[test]
fn store_model_with_forced_cleaning() {
    let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
    let store = LogStore::open_in_memory(config.clone()).unwrap();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let pages = config.logical_pages_for_fill_factor(0.6) as u64;
    let mut workload = ZipfianWorkload::new(pages, 0.99, 11);
    for i in 0..(config.physical_pages() as u64 * 6) {
        let page = workload.next_page();
        let payload = expected_payload((i % 200 + 8) as usize, (i % 251) as u8);
        store.put(page, &payload).unwrap();
        model.insert(page, payload);
    }
    assert!(store.stats().cleaning_cycles > 0);
    for (&page, value) in &model {
        assert_eq!(store.get(page).unwrap().as_deref(), Some(value.as_slice()));
    }
}
