//! Property-based tests (proptest) for the core invariants of the workspace:
//!
//! * the log-structured store behaves exactly like a `HashMap` under arbitrary
//!   put/delete/overwrite sequences, across flushes, cleaning and crash recovery;
//! * the B+-tree behaves exactly like a `BTreeMap` under arbitrary operation sequences;
//! * segment images and write traces round-trip through their binary encodings;
//! * the analytical fixpoint respects its defining equation for arbitrary fill factors.

use lss::btree::{BTree, BufferPool, MemPageStore};
use lss::core::layout::{decode_segment, SegmentBuilder};
use lss::core::policy::PolicyKind;
use lss::core::{LogStore, SegmentId, StoreConfig};
use lss::workload::{PageWorkload, WriteTrace, ZipfianWorkload};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// One user-level operation against the store.
#[derive(Debug, Clone)]
enum Op {
    Put { page: u64, len: usize, fill: u8 },
    Delete { page: u64 },
}

fn op_strategy(max_page: u64, max_len: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..max_page, 1..max_len, any::<u8>())
            .prop_map(|(page, len, fill)| Op::Put { page, len, fill }),
        1 => (0..max_page).prop_map(|page| Op::Delete { page }),
    ]
}

fn expected_payload(len: usize, fill: u8) -> Vec<u8> {
    let mut v = vec![fill; len];
    if len >= 8 {
        v[..8].copy_from_slice(&(len as u64).to_le_bytes());
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// The store is a faithful map under arbitrary operation sequences, including after a
    /// flush + full crash recovery from the device.
    #[test]
    fn store_matches_hashmap_model(ops in proptest::collection::vec(op_strategy(40, 180), 1..300)) {
        let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
        let mut store = LogStore::open_in_memory(config.clone()).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Put { page, len, fill } => {
                    let payload = expected_payload(len, fill);
                    store.put(page, &payload).unwrap();
                    model.insert(page, payload);
                }
                Op::Delete { page } => {
                    store.delete(page).unwrap();
                    model.remove(&page);
                }
            }
        }
        // Live state matches the model before any flush (reads served from buffers).
        for (&page, value) in &model {
            let got = store.get(page).unwrap();
            prop_assert_eq!(got.as_deref(), Some(value.as_slice()));
        }
        for page in 0..40u64 {
            if !model.contains_key(&page) {
                prop_assert!(store.get(page).unwrap().is_none());
            }
        }

        // After flush + recovery from the raw device, the state is identical.
        store.flush().unwrap();
        let device = store.into_device();
        let mut recovered = LogStore::recover_with_device(config, device).unwrap();
        prop_assert_eq!(recovered.live_pages(), model.len());
        for (&page, value) in &model {
            let got = recovered.get(page).unwrap();
            prop_assert_eq!(got.as_deref(), Some(value.as_slice()));
        }
    }

    /// The B+-tree is a faithful ordered map under arbitrary operation sequences.
    #[test]
    fn btree_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(200, 40), 1..400)) {
        let pool = BufferPool::new(MemPageStore::new(512), 32);
        let mut tree = BTree::open(pool).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Put { page, len, fill } => {
                    let key = format!("key-{page:06}").into_bytes();
                    let value = expected_payload(len.min(60), fill);
                    tree.insert(&key, &value).unwrap();
                    model.insert(key, value);
                }
                Op::Delete { page } => {
                    let key = format!("key-{page:06}").into_bytes();
                    let existed = model.remove(&key).is_some();
                    prop_assert_eq!(tree.delete(&key).unwrap(), existed);
                }
            }
        }
        prop_assert_eq!(tree.len() as usize, model.len());
        for (key, value) in &model {
            let got = tree.get(key).unwrap();
            prop_assert_eq!(got.as_deref(), Some(value.as_slice()));
        }
        // Full ordered scan equals the model's iteration order.
        let scanned = tree.range(b"", b"zzzzzzzzzzzz").unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scanned, expected);
    }

    /// Segment images round-trip arbitrary page batches (ids, payload sizes, tombstones).
    #[test]
    fn segment_layout_roundtrips(
        pages in proptest::collection::vec((any::<u64>(), 0..200usize, any::<bool>()), 0..20)
    ) {
        let segment_bytes = 8192;
        let mut builder = SegmentBuilder::new(segment_bytes);
        let mut pushed = Vec::new();
        for (i, (page, len, tombstone)) in pages.iter().enumerate() {
            if *tombstone {
                if builder.fits(0) {
                    builder.push_tombstone(*page, i as u64);
                    pushed.push((*page, None));
                }
            } else if builder.fits(*len) {
                let payload = vec![(i % 251) as u8; *len];
                builder.push_page(*page, i as u64, &payload);
                pushed.push((*page, Some(payload)));
            }
        }
        let (image, _) = builder.finish(7, 100, 50);
        prop_assert_eq!(image.len(), segment_bytes);
        let parsed = decode_segment(SegmentId(0), &image).unwrap().unwrap();
        prop_assert_eq!(parsed.entries.len(), pushed.len());
        for (entry, (page, payload)) in parsed.entries.iter().zip(&pushed) {
            prop_assert_eq!(entry.page_id, *page);
            match payload {
                None => prop_assert!(entry.is_tombstone()),
                Some(p) => {
                    let got = &image[entry.offset as usize..(entry.offset + entry.len) as usize];
                    prop_assert_eq!(got, p.as_slice());
                }
            }
        }
    }

    /// Write traces round-trip their binary file format.
    #[test]
    fn write_trace_roundtrips(writes in proptest::collection::vec(any::<u64>(), 0..2000)) {
        let trace = WriteTrace { writes };
        let mut buf = Vec::new();
        trace.write_to(&mut buf).unwrap();
        let back = WriteTrace::read_from(&buf[..]).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// The Table 1 fixpoint actually satisfies E = 1 - e^(-E/F) and always beats the
    /// average slack 1 - F.
    #[test]
    fn uniform_emptiness_satisfies_its_equation(f in 0.05f64..0.99) {
        let e = lss::analysis::table1::uniform_emptiness(f);
        let rhs = 1.0 - (-e / f).exp();
        prop_assert!((e - rhs).abs() < 1e-9, "E={e} is not a fixpoint at F={f}");
        prop_assert!(e >= 1.0 - f - 1e-9, "E={e} below the average slack at F={f}");
        prop_assert!(e < 1.0);
    }

    /// Zipfian exact frequencies are a proper probability assignment regardless of theta
    /// and population size.
    #[test]
    fn zipfian_frequencies_are_normalised(n in 2u64..400, theta in 0.3f64..1.6) {
        prop_assume!((theta - 1.0).abs() > 0.01);
        let w = ZipfianWorkload::new(n, theta, 1);
        let sum: f64 = (0..n).map(|p| w.update_frequency(p).unwrap()).sum();
        prop_assert!((sum / n as f64 - 1.0).abs() < 1e-6);
    }
}

/// Non-proptest sanity companion: the store model test above exercises small stores; this
/// checks one deterministic long-run case with heavy overwrites so cleaning definitely
/// participates in the model equivalence.
#[test]
fn store_model_with_forced_cleaning() {
    let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Greedy);
    let mut store = LogStore::open_in_memory(config.clone()).unwrap();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let pages = config.logical_pages_for_fill_factor(0.6) as u64;
    let mut workload = ZipfianWorkload::new(pages, 0.99, 11);
    for i in 0..(config.physical_pages() as u64 * 6) {
        let page = workload.next_page();
        let payload = expected_payload((i % 200 + 8) as usize, (i % 251) as u8);
        store.put(page, &payload).unwrap();
        model.insert(page, payload);
    }
    assert!(store.stats().cleaning_cycles > 0);
    for (&page, value) in &model {
        assert_eq!(store.get(page).unwrap().as_deref(), Some(value.as_slice()));
    }
}
