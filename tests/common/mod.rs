//! Helpers shared by the integration-test binaries (each `tests/*.rs` file compiles
//! separately and pulls this in via `mod common;`).

use lss::core::device::{DeviceGeometry, MemDevice, SegmentDevice};
use lss::core::{Error, GcPhase, GcPhaseHook, Result, SegmentId, StoreConfig};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Apply the concurrency knobs the CI stress job cranks via the environment
/// (`LSS_WRITE_STREAMS`, `LSS_CLEANER_THREADS`, and the adaptive-cleaner knobs
/// `LSS_CLEANER_MODE` / `LSS_CLEANER_MIN_CYCLES` / `LSS_CLEANER_MAX_CYCLES`) on top of
/// a test's base config, clamped to the ranges config validation accepts.
#[allow(dead_code)] // not every test binary uses it
pub fn apply_env_concurrency(config: StoreConfig) -> StoreConfig {
    config.with_env_overrides()
}

/// The seed the CI stress job varies per iteration (`LSS_STRESS_SEED`), so a stress
/// failure always names the exact seed to replay; tests fall back to `default` for
/// plain deterministic runs.
#[allow(dead_code)] // not every test binary uses it
pub fn stress_seed_or(default: u64) -> u64 {
    std::env::var("LSS_STRESS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// How long [`PhaseGate`] waits before declaring a cycle stuck.
#[allow(dead_code)]
const GATE_TIMEOUT: Duration = Duration::from_secs(30);

#[derive(Default)]
struct GateInner {
    /// Phases at which the first arrival of each cycle pauses.
    pause_at: HashSet<GcPhase>,
    /// How many pauses may still happen: once spent, later cycles pass through freely
    /// (so a test can park N cycles and still run further cycles to completion).
    pause_budget: usize,
    /// Every hook invocation, in arrival order.
    events: Vec<(u64, GcPhase, Option<SegmentId>)>,
    /// `(cycle, phase)` pairs currently parked inside the hook.
    paused: HashSet<(u64, GcPhase)>,
    /// `(cycle, phase)` pairs allowed through.
    released: HashSet<(u64, GcPhase)>,
    /// Pairs that already took their one pause (later arrivals pass straight through,
    /// so e.g. only the *first* `Claimed` of a cycle pauses it).
    seen: HashSet<(u64, GcPhase)>,
}

/// A controllable barrier over the cleaning-cycle state machine: the store's
/// [`lss::core::LogStore::set_gc_phase_hook`] fires at every phase boundary with no
/// lock held, and this harness turns it into a pause/release gate — tests park any
/// cycle at any boundary (including [`GcPhase::ControllerDecision`] ticks), run
/// foreground traffic or other cycles while it is parked, then release it. Shared by
/// `tests/cleaner_races.rs` and `tests/gc_controller.rs`.
#[derive(Default)]
pub struct PhaseGate {
    inner: Mutex<GateInner>,
    cond: Condvar,
}

#[allow(dead_code)] // not every test binary uses every helper
impl PhaseGate {
    /// A gate pausing the first arrival of up to `budget` cycles at each given phase.
    pub fn new(pause_at: &[GcPhase], budget: usize) -> Arc<Self> {
        let gate = Arc::new(Self::default());
        {
            let mut g = gate.inner.lock().unwrap();
            g.pause_at = pause_at.iter().copied().collect();
            g.pause_budget = budget;
        }
        gate
    }

    /// The hook to install via `LogStore::set_gc_phase_hook`.
    pub fn hook(self: &Arc<Self>) -> GcPhaseHook {
        let gate = Arc::clone(self);
        Arc::new(move |cycle, phase, victim| gate.on_phase(cycle, phase, victim))
    }

    fn on_phase(&self, cycle: u64, phase: GcPhase, victim: Option<SegmentId>) {
        let mut g = self.inner.lock().unwrap();
        g.events.push((cycle, phase, victim));
        self.cond.notify_all();
        if g.pause_budget > 0 && g.pause_at.contains(&phase) && g.seen.insert((cycle, phase)) {
            g.pause_budget -= 1;
            g.paused.insert((cycle, phase));
            self.cond.notify_all();
            let deadline = Instant::now() + GATE_TIMEOUT;
            while !g.released.contains(&(cycle, phase)) {
                let (ng, timeout) = self
                    .cond
                    .wait_timeout(g, deadline.saturating_duration_since(Instant::now()))
                    .unwrap();
                g = ng;
                assert!(
                    !timeout.timed_out(),
                    "cycle {cycle} stuck paused at {phase:?} (test forgot to release?)"
                );
            }
            g.paused.remove(&(cycle, phase));
            self.cond.notify_all();
        }
    }

    /// Block until `n` distinct cycles are parked at `phase`; returns their tokens.
    pub fn wait_paused_at(&self, phase: GcPhase, n: usize) -> Vec<u64> {
        let deadline = Instant::now() + GATE_TIMEOUT;
        let mut g = self.inner.lock().unwrap();
        loop {
            let cycles: Vec<u64> = g
                .paused
                .iter()
                .filter(|(_, p)| *p == phase)
                .map(|&(c, _)| c)
                .collect();
            if cycles.len() >= n {
                return cycles;
            }
            let (ng, timeout) = self
                .cond
                .wait_timeout(g, deadline.saturating_duration_since(Instant::now()))
                .unwrap();
            g = ng;
            assert!(
                !timeout.timed_out(),
                "only {} of {n} cycles reached {phase:?}",
                g.paused.iter().filter(|(_, p)| *p == phase).count()
            );
        }
    }

    /// Release one parked `(cycle, phase)` pair.
    pub fn release(&self, cycle: u64, phase: GcPhase) {
        let mut g = self.inner.lock().unwrap();
        g.released.insert((cycle, phase));
        self.cond.notify_all();
    }

    /// Stop pausing anywhere and release everything parked now or later.
    pub fn open_wide(&self) {
        let mut g = self.inner.lock().unwrap();
        g.pause_at.clear();
        let parked: Vec<_> = g.paused.iter().copied().collect();
        g.released.extend(parked);
        // Also pre-release pairs that paused once already but might re-arrive.
        let seen: Vec<_> = g.seen.iter().copied().collect();
        g.released.extend(seen);
        self.cond.notify_all();
    }

    /// The victims a cycle claimed, from its `Claimed` events.
    pub fn victims_of(&self, cycle: u64) -> Vec<SegmentId> {
        self.inner
            .lock()
            .unwrap()
            .events
            .iter()
            .filter(|(c, p, _)| *c == cycle && *p == GcPhase::Claimed)
            .filter_map(|(_, _, v)| *v)
            .collect()
    }

    /// Every hook event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<(u64, GcPhase, Option<SegmentId>)> {
        self.inner.lock().unwrap().events.clone()
    }

    /// The [`GcPhase::ControllerDecision`] targets recorded so far, in arrival order
    /// (the hook's first parameter carries the decided target for these events).
    pub fn decisions(&self) -> Vec<u64> {
        self.inner
            .lock()
            .unwrap()
            .events
            .iter()
            .filter(|(_, p, _)| *p == GcPhase::ControllerDecision)
            .map(|&(t, _, _)| t)
            .collect()
    }
}

/// A cloneable in-memory device that "dies" at a chosen write boundary: after a budget
/// of further segment writes, every write and sync fails — while the durable contents
/// survive for recovery, which only needs reads. Generalises the crash devices of
/// `tests/concurrency.rs` / `tests/cleaner_races.rs`: `fail_after(n)` sweeps a crash
/// across every device-write boundary of a protocol (n = 0 kills it immediately), and
/// `heal` restores the device so the "restarted process" can write again.
#[derive(Clone)]
#[allow(dead_code)] // not every test binary uses it
pub struct CrashPointDevice {
    inner: Arc<MemDevice>,
    /// Remaining writes before the device dies; `u64::MAX` means healthy.
    budget: Arc<AtomicU64>,
}

#[allow(dead_code)] // not every test binary uses every helper
impl CrashPointDevice {
    pub fn new(segment_bytes: usize, num_segments: usize) -> Self {
        Self {
            inner: Arc::new(MemDevice::new(segment_bytes, num_segments)),
            budget: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// Allow `n` more segment writes, then fail every subsequent write and sync.
    pub fn fail_after(&self, n: u64) {
        self.budget.store(n, Ordering::SeqCst);
    }

    /// Kill the device immediately (equivalent to `fail_after(0)`).
    pub fn kill(&self) {
        self.fail_after(0);
    }

    /// Restore the device (the "restarted process" may write again).
    pub fn heal(&self) {
        self.budget.store(u64::MAX, Ordering::SeqCst);
    }

    /// Total segment writes that reached the in-memory medium.
    pub fn writes(&self) -> u64 {
        self.inner.segment_writes()
    }

    fn dead() -> Error {
        Error::Io(std::io::Error::other("simulated crash: device gone"))
    }

    /// Spend one unit of write budget, failing once it is exhausted.
    fn charge(&self) -> Result<()> {
        loop {
            let cur = self.budget.load(Ordering::SeqCst);
            if cur == u64::MAX {
                return Ok(()); // healthy: unlimited
            }
            if cur == 0 {
                return Err(Self::dead());
            }
            if self
                .budget
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(());
            }
        }
    }
}

impl SegmentDevice for CrashPointDevice {
    fn geometry(&self) -> DeviceGeometry {
        self.inner.geometry()
    }
    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
        self.inner.read_segment(seg)
    }
    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
        self.inner.read_range(seg, offset, len)
    }
    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
        self.charge()?;
        self.inner.write_segment(seg, image)
    }
    fn sync(&self) -> Result<()> {
        if self.budget.load(Ordering::SeqCst) == 0 {
            return Err(Self::dead());
        }
        self.inner.sync()
    }
    fn segment_writes(&self) -> u64 {
        self.inner.segment_writes()
    }
}
