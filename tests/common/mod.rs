//! Helpers shared by the integration-test binaries (each `tests/*.rs` file compiles
//! separately and pulls this in via `mod common;`).

use lss::core::StoreConfig;

/// Apply the concurrency knobs the CI stress job cranks via the environment
/// (`LSS_WRITE_STREAMS`, `LSS_CLEANER_THREADS`) on top of a test's base config,
/// clamped to the ranges config validation accepts.
#[allow(dead_code)] // not every test binary uses it
pub fn apply_env_concurrency(mut config: StoreConfig) -> StoreConfig {
    if let Some(n) = std::env::var("LSS_WRITE_STREAMS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        config.write_streams = n.clamp(1, 16);
    }
    if let Some(n) = std::env::var("LSS_CLEANER_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        config.cleaner_threads = n.clamp(1, 8);
    }
    config
}
