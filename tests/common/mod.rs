//! Helpers shared by the integration-test binaries (each `tests/*.rs` file compiles
//! separately and pulls this in via `mod common;`).

use lss::core::device::{DeviceGeometry, MemDevice, SegmentDevice};
use lss::core::{Error, Result, SegmentId, StoreConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Apply the concurrency knobs the CI stress job cranks via the environment
/// (`LSS_WRITE_STREAMS`, `LSS_CLEANER_THREADS`) on top of a test's base config,
/// clamped to the ranges config validation accepts.
#[allow(dead_code)] // not every test binary uses it
pub fn apply_env_concurrency(mut config: StoreConfig) -> StoreConfig {
    if let Some(n) = std::env::var("LSS_WRITE_STREAMS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        config.write_streams = n.clamp(1, 16);
    }
    if let Some(n) = std::env::var("LSS_CLEANER_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        config.cleaner_threads = n.clamp(1, 8);
    }
    config
}

/// A cloneable in-memory device that "dies" at a chosen write boundary: after a budget
/// of further segment writes, every write and sync fails — while the durable contents
/// survive for recovery, which only needs reads. Generalises the crash devices of
/// `tests/concurrency.rs` / `tests/cleaner_races.rs`: `fail_after(n)` sweeps a crash
/// across every device-write boundary of a protocol (n = 0 kills it immediately), and
/// `heal` restores the device so the "restarted process" can write again.
#[derive(Clone)]
#[allow(dead_code)] // not every test binary uses it
pub struct CrashPointDevice {
    inner: Arc<MemDevice>,
    /// Remaining writes before the device dies; `u64::MAX` means healthy.
    budget: Arc<AtomicU64>,
}

#[allow(dead_code)] // not every test binary uses every helper
impl CrashPointDevice {
    pub fn new(segment_bytes: usize, num_segments: usize) -> Self {
        Self {
            inner: Arc::new(MemDevice::new(segment_bytes, num_segments)),
            budget: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// Allow `n` more segment writes, then fail every subsequent write and sync.
    pub fn fail_after(&self, n: u64) {
        self.budget.store(n, Ordering::SeqCst);
    }

    /// Kill the device immediately (equivalent to `fail_after(0)`).
    pub fn kill(&self) {
        self.fail_after(0);
    }

    /// Restore the device (the "restarted process" may write again).
    pub fn heal(&self) {
        self.budget.store(u64::MAX, Ordering::SeqCst);
    }

    /// Total segment writes that reached the in-memory medium.
    pub fn writes(&self) -> u64 {
        self.inner.segment_writes()
    }

    fn dead() -> Error {
        Error::Io(std::io::Error::other("simulated crash: device gone"))
    }

    /// Spend one unit of write budget, failing once it is exhausted.
    fn charge(&self) -> Result<()> {
        loop {
            let cur = self.budget.load(Ordering::SeqCst);
            if cur == u64::MAX {
                return Ok(()); // healthy: unlimited
            }
            if cur == 0 {
                return Err(Self::dead());
            }
            if self
                .budget
                .compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Ok(());
            }
        }
    }
}

impl SegmentDevice for CrashPointDevice {
    fn geometry(&self) -> DeviceGeometry {
        self.inner.geometry()
    }
    fn read_segment(&self, seg: SegmentId) -> Result<Vec<u8>> {
        self.inner.read_segment(seg)
    }
    fn read_range(&self, seg: SegmentId, offset: u32, len: u32) -> Result<Vec<u8>> {
        self.inner.read_range(seg, offset, len)
    }
    fn write_segment(&self, seg: SegmentId, image: &[u8]) -> Result<()> {
        self.charge()?;
        self.inner.write_segment(seg, image)
    }
    fn sync(&self) -> Result<()> {
        if self.budget.load(Ordering::SeqCst) == 0 {
            return Err(Self::dead());
        }
        self.inner.sync()
    }
    fn segment_writes(&self) -> u64 {
        self.inner.segment_writes()
    }
}
