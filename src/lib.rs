//! # lss — a log-structured store with Minimum Declining Cost cleaning
//!
//! This is the umbrella crate of the workspace reproducing
//! *Efficiently Reclaiming Space in a Log Structured Store* (Lomet & Luo, ICDE 2021).
//! It re-exports the individual crates so examples and downstream users can depend on a
//! single crate:
//!
//! * [`core`] — the log-structured page store and the cleaning policies (the paper's
//!   contribution lives in [`core::policy::MdcPolicy`]).
//! * [`sim`] — the evaluation simulator used to regenerate the paper's figures.
//! * [`workload`] — synthetic and trace-driven workload generators.
//! * [`analysis`] — the closed-form analytical models behind Tables 1 and 2.
//! * [`btree`] — a B+-tree page storage engine substrate, plus the crash-consistent
//!   paged key-value layer ([`btree::kv::KvStore`]) built on it.
//! * [`tpcc`] — a TPC-C-style workload used to produce page-write traces.
//! * [`server`] — the TCP front-end serving [`btree::kv::KvStore`] over the wire
//!   protocol specified in `docs/PROTOCOL.md`.
//! * [`client`] — the sync, pipelining-capable client for that protocol.
//!
//! ## Quickstart
//!
//! ```
//! use lss::core::{LogStore, StoreConfig, policy::PolicyKind};
//!
//! let config = StoreConfig::small_for_tests().with_policy(PolicyKind::Mdc);
//! let mut store = LogStore::open_in_memory(config).unwrap();
//! store.put(42, b"hello world").unwrap();
//! assert_eq!(store.get(42).unwrap().unwrap().as_ref(), b"hello world");
//! ```

pub use lss_analysis as analysis;
pub use lss_btree as btree;
pub use lss_client as client;
pub use lss_core as core;
pub use lss_server as server;
pub use lss_sim as sim;
pub use lss_tpcc as tpcc;
pub use lss_workload as workload;
