//! Quickstart: open a log-structured store with MDC cleaning, write a skewed workload,
//! and inspect the write amplification the cleaner produced.
//!
//! Run with: `cargo run --release --example quickstart`

use lss::core::policy::PolicyKind;
use lss::core::{LogStore, StoreConfig};
use lss::workload::{HotColdWorkload, PageWorkload};

fn main() -> lss::core::Result<()> {
    // A small in-memory store: 64 KiB segments, 256 of them (16 MiB), 4 KiB pages.
    let mut config = StoreConfig::paper_default().with_policy(PolicyKind::Mdc);
    config.segment_bytes = 64 * 1024;
    config.num_segments = 256;
    config.sort_buffer_segments = 8;
    let store = LogStore::open_in_memory(config.clone())?;

    // Fill to ~70% with 4 KiB pages, then overwrite with an 80:20 hot/cold pattern.
    let pages = config.logical_pages_for_fill_factor(0.7) as u64;
    let payload = vec![42u8; config.page_bytes];
    for p in 0..pages {
        store.put(p, &payload)?;
    }
    let mut workload = HotColdWorkload::new(pages, 0.2, 0.8, 7);
    for _ in 0..(pages * 10) {
        store.put(workload.next_page(), &payload)?;
    }
    store.flush()?;

    // Every page is still readable, and the stats show what cleaning cost us.
    assert_eq!(store.get(0)?.unwrap().len(), config.page_bytes);
    let stats = store.stats();
    println!("policy                = {}", store.policy_name());
    println!("user pages written    = {}", stats.user_pages_written);
    println!("GC pages relocated    = {}", stats.gc_pages_written);
    println!("cleaning cycles       = {}", stats.cleaning_cycles);
    println!("write amplification   = {:.3}", stats.write_amplification());
    println!(
        "mean E at cleaning    = {:.3}",
        stats.mean_emptiness_at_clean()
    );
    println!("fill factor           = {:.3}", store.fill_factor());
    Ok(())
}
