//! The B+-tree storage engine running directly on the log-structured store — the stack
//! the paper's Figure 6 studies (B+-tree pages written to a log-structured device), here
//! end to end in one process: tree → buffer pool → LogStore with MDC cleaning.
//!
//! Run with: `cargo run --release --example btree_on_lss`

use lss::btree::{BTree, BufferPool, LssPageStore};
use lss::core::policy::PolicyKind;
use lss::core::{LogStore, StoreConfig};

fn main() -> lss::core::Result<()> {
    // A small device plus a small buffer pool, so tree page rewrites actually reach the
    // log-structured store and its cleaner.
    let mut config = StoreConfig::paper_default().with_policy(PolicyKind::Mdc);
    config.segment_bytes = 128 * 1024;
    config.num_segments = 32;
    config.sort_buffer_segments = 2;
    config.cleaning.trigger_free_segments = 6;
    config.cleaning.segments_per_cycle = 8;
    config.absorb_updates_in_buffer = false;

    let store = LogStore::open_in_memory(config.clone())?;
    let pool = BufferPool::new(LssPageStore::new(store, config.page_bytes), 64);
    let tree = BTree::open(pool)?;

    // Insert an ordered data set, then update a hot key range repeatedly — B+-tree page
    // rewrites are exactly the kind of skewed page-write stream MDC is designed for.
    for i in 0..20_000u32 {
        tree.insert(
            format!("order:{i:08}").as_bytes(),
            format!("line-items-for-order-{i}").as_bytes(),
        )?;
    }
    for round in 0..30u32 {
        for i in 0..2_000u32 {
            // Scatter the updates over the whole key space so the working set exceeds the
            // buffer pool and the resulting page rewrites reach the log-structured store.
            let order = (round.wrapping_mul(104_729).wrapping_add(i * 37)) % 20_000;
            tree.insert(
                format!("order:{order:08}").as_bytes(),
                format!("updated-round-{round}-order-{order}").as_bytes(),
            )?;
        }
    }

    let from = b"order:00000500".to_vec();
    let to = b"order:00000510".to_vec();
    let window = tree.range(&from, &to)?;
    println!(
        "range scan [{}..{}) returned {} orders",
        500,
        510,
        window.len()
    );
    println!("tree height is implicit; keys stored = {}", tree.len());
    println!(
        "buffer pool hit ratio = {:.3}",
        tree.pool_stats().hit_ratio()
    );

    // Push everything down to the log-structured store and look at its cleaning stats.
    let lss = tree.into_store()?.into_inner();
    let stats = lss.stats();
    println!(
        "LogStore user pages written  = {}",
        stats.user_pages_written
    );
    println!("LogStore GC pages relocated  = {}", stats.gc_pages_written);
    println!(
        "LogStore write amplification = {:.3}",
        stats.write_amplification()
    );
    println!("LogStore segments cleaned    = {}", stats.segments_cleaned);
    Ok(())
}
