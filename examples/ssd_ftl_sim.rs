//! Using the simulator as an SSD FTL what-if tool: how much flash wear (write
//! amplification) do different garbage-collection policies cost at a given
//! over-provisioning level, for your workload's skew?
//!
//! This is the paper's motivating scenario (§1.1): an SSD's FTL reclaims erase blocks
//! exactly like an LFS reclaims segments, and every extra GC write is flash wear.
//!
//! Run with: `cargo run --release --example ssd_ftl_sim [--skew 0.99] [--op 0.2]`

use lss::core::policy::PolicyKind;
use lss::sim::{run_simulation, SimConfig};
use lss::workload::ZipfianWorkload;

fn arg(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let skew = arg("--skew", 0.99); // Zipfian theta of the host workload
    let over_provisioning = arg("--op", 0.2); // spare capacity fraction (1 - fill factor)
    let fill = 1.0 - over_provisioning;

    println!("SSD FTL garbage-collection what-if");
    println!("  host workload : Zipfian theta = {skew}");
    println!(
        "  over-provision: {:.0}% (fill factor {fill:.2})",
        over_provisioning * 100.0
    );
    println!("  erase block   : 128 pages of 4 KiB (512 KiB)\n");
    println!(
        "{:<14} {:>18} {:>22}",
        "GC policy", "write amplification", "flash writes per user write"
    );

    for policy in [
        PolicyKind::Greedy,
        PolicyKind::CostBenefit,
        PolicyKind::Mdc,
        PolicyKind::MdcOpt,
    ] {
        let config = SimConfig {
            pages_per_segment: 128,
            num_segments: 1024,
            fill_factor: fill,
            policy,
            ..SimConfig::paper_default(policy)
        };
        let mut workload = ZipfianWorkload::new(config.logical_pages(), skew, 99);
        let total = config.physical_pages() * 12;
        let result = run_simulation(&config, &mut workload, total, total / 4);
        println!(
            "{:<14} {:>18.3} {:>22.3}",
            result.policy,
            result.write_amplification,
            1.0 + result.write_amplification
        );
    }
    println!("\nLower is better: every extra write is flash wear the controller pays for GC.");
}
