//! A client/server round trip over the wire protocol (docs/PROTOCOL.md): start an
//! in-process `lss-server` on an ephemeral port, connect with `lss-client`, and walk
//! every opcode — durable and buffered PUTs, GET, DELETE, SCAN, FLUSH, STATS — plus
//! a pipelined batch of PUTs that shares one group commit and one socket flush.
//!
//! Run with: `cargo run --release --example kv_client_roundtrip`
//!
//! Against a standalone server, start `cargo run --release --bin lss-server` first and
//! connect `Client::connect("127.0.0.1:7878")` instead.

use lss::btree::kv::{KvOptions, KvStore};
use lss::client::{Client, ClientOptions};
use lss::core::{LogStore, StoreConfig};
use lss::server::protocol::Request;
use lss::server::{Server, ServerConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-process server on an ephemeral port; a real deployment runs the
    // `lss-server` binary against a file-backed device instead.
    let store = LogStore::open_in_memory(StoreConfig::small_for_tests())?;
    let kv = Arc::new(KvStore::open_with(
        store,
        KvOptions {
            group_commit_window_us: 200,
            ..KvOptions::default()
        },
    )?);
    let server = Server::start(Arc::clone(&kv), "127.0.0.1:0", ServerConfig::default())?;
    let addr = server.local_addr();
    println!("server listening on {addr}");

    let mut client = Client::connect_with(&addr.to_string(), ClientOptions::default())?;

    // One-shot calls: each blocks for its reply. PUT/DELETE are durable by default —
    // OK means the write survives `kill -9` of the server.
    client.put(b"user:0001", br#"{"name":"ada"}"#)?;
    client.put(b"user:0002", br#"{"name":"grace"}"#)?;
    let value = client.get(b"user:0001")?.expect("just written");
    println!("GET user:0001 -> {}", String::from_utf8_lossy(&value));

    // Pipelining (PROTOCOL.md §7): issue a batch of durable PUTs without waiting,
    // then drain the replies. The server batches them into a shared group commit,
    // so N acks cost ~one superblock flip instead of N.
    let mut pending = Vec::new();
    for i in 3..100u32 {
        let key = format!("user:{i:04}");
        let val = format!("{{\"id\":{i}}}");
        pending.push(client.send(&Request::Put {
            key: key.into_bytes(),
            value: val.into_bytes(),
            durable: true,
        })?);
    }
    client.drain()?;
    println!("pipelined {} durable PUTs", pending.len());

    // Buffered PUT: acked before it is durable (FLAG_NO_FLUSH); pair with FLUSH.
    client.put_buffered(b"user:9999", b"transient")?;
    client.flush()?;

    let existed = client.delete(b"user:9999")?;
    assert!(existed);

    // SCAN streams a key range; scan_all resumes across truncated replies.
    let items = client.scan_all(b"user:0010", b"user:0020")?;
    println!("scan [user:0010, user:0020) returned {} keys", items.len());
    assert_eq!(items.len(), 10);

    // STATS returns a JSON document (field inventory: docs/OPERATIONS.md).
    let stats = client.stats()?;
    println!("stats: {stats}");

    server.shutdown();
    // The server shares the store via Arc: after shutdown the embedded handle still
    // reads the same data.
    assert_eq!(kv.get(b"user:0042")?.as_deref(), Some(&b"{\"id\":42}"[..]));
    println!("round trip complete");
    Ok(())
}
