//! A persistent key-value store on the log-structured store: write a few thousand keys
//! to a file-backed device through the **paged B+-tree index** (values in the log, the
//! index's own pages in the same log, committed by an atomic superblock flip), flush,
//! then recover the store from the device alone — as a restart would — and read
//! everything back.
//!
//! Run with: `cargo run --release --example kv_on_lss`

use lss::btree::kv::KvStore;
use lss::core::policy::PolicyKind;
use lss::core::{device::FileDevice, LogStore, StoreConfig};

fn main() -> lss::core::Result<()> {
    // A deliberately small device so the cleaner has real work to do on this data set.
    let mut config = StoreConfig::paper_default().with_policy(PolicyKind::Mdc);
    config.segment_bytes = 16 * 1024;
    config.num_segments = 96;
    config.page_bytes = 512;
    config.sort_buffer_segments = 4;
    config.cleaning.trigger_free_segments = 6;
    config.cleaning.segments_per_cycle = 8;
    // Let every overwrite reach a segment (instead of coalescing in the sort buffer) so
    // the example actually exercises the cleaner.
    config.absorb_updates_in_buffer = false;

    let mut path = std::env::temp_dir();
    path.push(format!("lss-kv-example-{}.lss", std::process::id()));

    // Phase 1: create, load, flush.
    {
        let device = FileDevice::create(&path, config.segment_bytes, config.num_segments)?;
        let store = LogStore::open_with_device(config.clone(), Box::new(device))?;
        let kv = KvStore::open(store)?;
        for i in 0..5_000u32 {
            kv.put(
                format!("user:{i:06}").as_bytes(),
                format!("{{\"id\":{i},\"karma\":{}}}", i * 7).as_bytes(),
            )?;
        }
        // Overwrite keys scattered across the whole data set so segments decay into the
        // live/dead checkerboard the cleaner exists for; commit every few rounds the
        // way a real engine checkpoints.
        for round in 0..40u32 {
            for i in 0..500u32 {
                let key_id = (round.wrapping_mul(7919).wrapping_add(i * 13)) % 5_000;
                kv.put(
                    format!("user:{key_id:06}").as_bytes(),
                    format!(
                        "{{\"id\":{key_id},\"karma\":{},\"round\":{round}}}",
                        key_id * 7 + round
                    )
                    .as_bytes(),
                )?;
            }
            if round % 8 == 7 {
                kv.flush()?;
            }
        }
        kv.delete(b"user:000013")?;
        kv.flush()?;
        let stats = kv.store().stats();
        let kv_stats = kv.stats();
        println!(
            "loaded 5000 keys (+20000 hot overwrites); cleaning cycles = {}, write amplification = {:.3}",
            stats.cleaning_cycles,
            stats.write_amplification()
        );
        println!(
            "paged index: epoch {}, index W_amp = {:.4}, pool hit ratio = {:.3}",
            kv_stats.epoch,
            kv_stats.index_write_amplification(),
            kv_stats.pool.hit_ratio()
        );
    }

    // Phase 2: recover from the device (no checkpoint needed) and read back.
    {
        let device = FileDevice::open(&path, config.segment_bytes, config.num_segments)?;
        let store = LogStore::recover_with_device(config.clone(), Box::new(device))?;
        let kv = KvStore::open(store)?;
        println!("recovered {} keys from {}", kv.len(), path.display());
        assert_eq!(kv.len(), 4_999);
        assert!(
            kv.get(b"user:000013")?.is_none(),
            "deleted key must stay deleted"
        );
        let sample = kv.get(b"user:000100")?.expect("key must survive recovery");
        println!("user:000100 = {}", String::from_utf8_lossy(&sample));
        println!(
            "post-recovery stats: {} live pages, {} free segments",
            kv.store().live_pages(),
            kv.store().free_segments()
        );
        let range = kv.range(b"user:000200", b"user:000205")?;
        println!("range scan returned {} keys", range.len());
        assert_eq!(range.len(), 5);
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
